// Abstract syntax of the NetQRE surface language (§3, Fig. 2; see
// DESIGN.md §4 for the concrete grammar this repo implements).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/aggop.hpp"
#include "core/value.hpp"

namespace netqre::lang {

// Predicate expressions — the contents of `[ ... ]` atoms and of
// filter(...) arguments.
struct PredExp {
  enum class Kind : uint8_t {
    True,
    Cmp,   // field OP operand
    And,
    Or,
    Not,
    Macro,  // is_tcp(c), is_udp(c), ...
  };

  struct Operand {
    enum class Kind : uint8_t { Literal, Name };
    Kind kind = Kind::Literal;
    core::Value lit;
    std::string name;    // parameter reference
    int64_t offset = 0;  // name + offset
  };

  Kind kind = Kind::True;
  std::string field;  // Cmp: field name (may be dotted, e.g. sip.method)
  std::string op;     // Cmp: "==", "!=", "<", "<=", ">", ">=", "contains"
  Operand rhs;
  std::vector<PredExp> kids;       // And/Or/Not
  std::string macro;               // Macro name
  std::vector<Operand> macro_args;
  int line = 0;
};

// Regular-expression syntax (PSRE).
struct ReExp {
  enum class Kind : uint8_t {
    Eps,
    Any,    // .
    Pred,   // [pred]
    Concat,
    Alt,
    Star,
    Plus,
    Opt,
    And,
    Not,
  };
  Kind kind = Kind::Eps;
  PredExp pred;
  std::vector<ReExp> kids;
  int line = 0;
};

struct Exp;
using ExpPtr = std::shared_ptr<Exp>;

struct Exp {
  enum class Kind : uint8_t {
    Lit,          // integer / double / string / bool / IP literal
    Name,         // parameter or zero-argument sfun reference
    FieldOf,      // base.field: last.srcip, c.srcip
    Call,         // f(a1, ..., an); also filter/exists/alert/block/...
    Regex,        // /re/
    Concat,       // concat(r1, ..., rn): regex concatenation sugar
    Cond,         // c ? t [: e]
    Bin,          // arithmetic / comparison / boolean
    Split,        // split(e1, ..., en, aggop)
    Iter,         // iter(e, aggop)
    Agg,          // aggop{ e | T x, ... }
    Comp,         // e >> e
  };

  Kind kind = Kind::Lit;
  int line = 0;

  core::Value lit;
  std::string name;   // Name / FieldOf base / Call callee
  std::string field;  // FieldOf field (may be dotted)
  std::string op;     // Bin operator
  std::vector<ExpPtr> kids;
  ReExp re;           // Regex
  core::AggOp agg = core::AggOp::Sum;             // Split / Iter / Agg
  std::vector<std::pair<std::string, std::string>> binders;  // Agg: type name
};

struct SFun {
  std::string name;
  std::string ret_type;  // surface type name ("int", "action", "re", ...)
  std::vector<std::pair<std::string, std::string>> params;  // (type, name)
  ExpPtr body;
  int line = 0;
};

struct Program {
  std::vector<SFun> sfuns;

  [[nodiscard]] const SFun* find(const std::string& name) const {
    for (const auto& f : sfuns) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
};

}  // namespace netqre::lang
