// Semantic analysis for NetQRE programs.
//
// Runs between parsing and lowering in the pipeline
//     parse → analyze → lower → codegen
// and collects structured diagnostics (see diag.hpp for the NQxxx rule
// codes) instead of throwing on the first problem.  The pass is
// conservative: every error it reports is a definite problem under the
// paper's semantics; anything it cannot decide statically is skipped, so a
// clean report never rules out a dynamic LowerError.
#pragma once

#include <string>

#include "lang/ast.hpp"
#include "lang/diag.hpp"

namespace netqre::lang {

// Analyzes the sfuns of `prog` with index >= first_sfun.  Earlier sfuns
// (typically the prelude) contribute signatures for call checking but are
// not themselves linted, keeping diagnostic line numbers meaningful for the
// user's source.
Diagnostics analyze_program(const Program& prog, size_t first_sfun = 0);

// Parses `source` with the prelude's stream functions in scope (the prelude
// is parsed separately so line numbers refer to `source`) and analyzes it.
// Lex/parse failures are reported as NQ000 diagnostics rather than thrown.
Diagnostics analyze_source(const std::string& source);

}  // namespace netqre::lang
