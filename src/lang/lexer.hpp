// Hand-rolled lexer for NetQRE source text.
//
// Notable conventions:
//  - `a.b.c.d` with four numeric groups lexes as an IP literal; one dot
//    between digits lexes as a double literal.
//  - `/` is returned as a plain Slash token; the parser decides whether it
//    starts a regex literal (primary position) or is division (operator
//    position).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/value.hpp"
#include "lang/diag.hpp"
#include "net/ipv4.hpp"

namespace netqre::lang {

enum class Tok : uint8_t {
  End,
  Ident,     // identifiers and keywords
  Int,
  Double,
  Ip,
  Str,
  // punctuation / operators
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi, Colon, Question, Dot, Pipe, Amp, Bang, Star, Plus,
  Slash, Percent, Minus, Assign, Eq, Ne, Lt, Le, Gt, Ge,
  AndAnd, OrOr, Shr,  // >>
};

struct Token {
  Tok kind = Tok::End;
  std::string text;       // Ident / Str
  int64_t int_value = 0;  // Int / Ip (host-order for Ip)
  double dbl_value = 0;   // Double
  int line = 1;
};

struct LexError : std::runtime_error {
  explicit LexError(Diagnostic d)
      : std::runtime_error(d.to_string()), diag(std::move(d)) {}
  LexError(int line, const std::string& msg)
      : LexError(Diagnostic::error("NQ000", line, msg)) {}
  Diagnostic diag;
};

std::vector<Token> lex(const std::string& source);

}  // namespace netqre::lang
