#include "lang/certify.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <sstream>

#include "core/ops.hpp"

namespace netqre::lang {
namespace {

using core::AtomTable;
using core::Dfa;
using core::Op;

// ------------------------------------------------------------ arithmetic
//
// Bounds are computed with saturating arithmetic so a pathological (but
// still bounded) query cannot overflow into a wrong small quota.

constexpr uint64_t kSat = uint64_t{1} << 40;

uint64_t sat_add(uint64_t a, uint64_t b) {
  return a >= kSat || b >= kSat || a + b >= kSat ? kSat : a + b;
}
uint64_t sat_mul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a >= kSat || b >= kSat || a > kSat / b ? kSat : a * b;
}

// Bytes-per-register / overhead constants for the quota conversion.  They
// deliberately over-approximate the interpreter's real allocation (OpState
// vtables, unique_ptr boxing, trie nodes, flat-map slots): the certificate
// promises "never more than", and tests/test_certify.cpp holds it to that
// against Engine::state_memory() on every Table-1 workload.
constexpr uint64_t kBytesPerRegister = 192;
constexpr uint64_t kLeafOverheadBytes = 512;
constexpr uint64_t kFixedBaseBytes = 4096;

// ---------------------------------------------------------- union alphabet
//
// Local mirrors of the regex.cpp product helpers (they are file-local
// there): the union atom set of two DFAs, its assignment-consistent letters,
// and per-DFA letter projection.

std::vector<int> union_atoms(const Dfa& f, const Dfa& g) {
  std::vector<int> atoms = f.atom_ids;
  atoms.insert(atoms.end(), g.atom_ids.begin(), g.atom_ids.end());
  std::ranges::sort(atoms);
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  return atoms;
}

std::vector<int> position_map(const std::vector<int>& sub,
                              const std::vector<int>& full) {
  std::vector<int> out(sub.size());
  for (size_t i = 0; i < sub.size(); ++i) {
    out[i] = static_cast<int>(
        std::find(full.begin(), full.end(), sub[i]) - full.begin());
  }
  return out;
}

uint64_t project_letter(uint64_t letter, const std::vector<int>& pos_map) {
  uint64_t out = 0;
  for (size_t i = 0; i < pos_map.size(); ++i) {
    if ((letter >> pos_map[i]) & 1) out |= uint64_t{1} << i;
  }
  return out;
}

std::vector<uint64_t> consistent_letters(const AtomTable& table,
                                         const std::vector<int>& atom_ids) {
  std::vector<uint64_t> out;
  if (atom_ids.size() > static_cast<size_t>(core::kMaxAtoms)) return out;
  const uint64_t limit = uint64_t{1} << atom_ids.size();
  for (uint64_t bits = 0; bits < limit; ++bits) {
    if (core::assignment_consistent(table, atom_ids, bits)) out.push_back(bits);
  }
  return out;
}

// Renders one union-alphabet letter as a packet-class string: the minterm
// over the atoms, e.g. "[syn == 1 & !(ack == 1)]"; "." with no atoms.
std::string render_letter(const AtomTable& table,
                          const std::vector<int>& atoms, uint64_t letter) {
  if (atoms.empty()) return ".";
  std::string out = "[";
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i) out += " & ";
    const std::string a = table.at(atoms[i]).to_string();
    out += ((letter >> i) & 1) ? a : "!(" + a + ")";
  }
  return out + "]";
}

std::string render_word(const AtomTable& table, const std::vector<int>& atoms,
                        const std::vector<uint64_t>& letters) {
  if (letters.empty()) return "(empty stream)";
  std::string out;
  for (size_t i = 0; i < letters.size(); ++i) {
    if (i) out += ' ';
    out += render_letter(table, atoms, letters[i]);
  }
  return out;
}

// ------------------------------------------------------- witness extraction
//
// The builder's concat_unambiguous / star_unambiguous answer yes/no; these
// re-run the same product-reachability constructions with parent tracking so
// an ambiguous site yields the actual letter string that parses twice.

std::optional<AmbiguityFinding> concat_witness(const Dfa& f, const Dfa& g,
                                               const AtomTable& table) {
  const std::vector<int> atoms = union_atoms(f, g);
  const std::vector<uint64_t> letters = consistent_letters(table, atoms);
  const std::vector<int> fmap = position_map(f.atom_ids, atoms);
  const std::vector<int> gmap = position_map(g.atom_ids, atoms);

  // Two runs over one stream, both decomposing it as D_f · D_g; run A
  // switches strictly before run B (phases as in regex.cpp).
  struct Cfg {
    int a, b, phase;
    bool operator<(const Cfg& o) const {
      return std::tie(a, b, phase) < std::tie(o.a, o.b, o.phase);
    }
  };
  // Back-edge: predecessor + the move that reached this cfg.  letter >= 0 is
  // a letter index; -1 = run A's boundary move, -2 = run B's.
  struct Edge {
    Cfg prev;
    int letter;
  };
  std::map<Cfg, Edge> parent;
  std::deque<Cfg> work;
  const Cfg root{f.start, f.start, 0};
  auto push = [&](Cfg c, Cfg prev, int letter) {
    if (c.a == root.a && c.b == root.b && c.phase == root.phase) return;
    if (parent.emplace(c, Edge{prev, letter}).second) work.push_back(c);
  };
  auto expand = [&](Cfg c, Cfg prev, int letter) {
    push(c, prev, letter);
    if (c.phase == 0 && f.accept[c.a]) push({g.start, c.b, 1}, c, -1);
    if (c.phase == 2 && f.accept[c.b]) push({c.a, g.start, 3}, c, -2);
  };

  work.push_back(root);
  if (f.accept[root.a]) push({g.start, root.b, 1}, root, -1);
  std::optional<Cfg> goal;
  while (!work.empty() && !goal) {
    Cfg c = work.front();
    work.pop_front();
    if (c.phase == 3 && g.accept[c.a] && g.accept[c.b]) {
      goal = c;
      break;
    }
    for (size_t li = 0; li < letters.size(); ++li) {
      const uint64_t lf = project_letter(letters[li], fmap);
      const uint64_t lg = project_letter(letters[li], gmap);
      Cfg n = c;
      n.a = (c.phase == 0) ? f.step(c.a, lf) : g.step(c.a, lg);
      n.b = (c.phase == 3) ? g.step(c.b, lg) : f.step(c.b, lf);
      if (n.phase == 1) n.phase = 2;
      expand(n, c, static_cast<int>(li));
    }
  }
  if (!goal) return std::nullopt;

  // Reconstruct the move sequence root → goal.
  std::vector<int> moves;
  for (Cfg c = *goal; !(c.a == root.a && c.b == root.b && c.phase == root.phase);) {
    const Edge& e = parent.at(c);
    moves.push_back(e.letter);
    c = e.prev;
  }
  std::reverse(moves.begin(), moves.end());

  std::vector<uint64_t> word;
  int pos_a = -1;
  int pos_b = -1;
  for (int m : moves) {
    if (m == -1) {
      pos_a = static_cast<int>(word.size());
    } else if (m == -2) {
      pos_b = static_cast<int>(word.size());
    } else {
      word.push_back(letters[m]);
    }
  }

  AmbiguityFinding finding;
  finding.is_iter = false;
  finding.witness = render_word(table, atoms, word);
  std::ostringstream d;
  d << "a " << word.size() << "-packet stream of this class splits as f\xc2\xb7g"
    << " both after " << pos_a << " packet(s) and after " << pos_b
    << " packet(s)";
  finding.detail = d.str();
  return finding;
}

std::optional<AmbiguityFinding> star_witness(const Dfa& f,
                                             const AtomTable& table) {
  if (f.accepts_empty()) {
    AmbiguityFinding finding;
    finding.is_iter = true;
    finding.witness = "(empty stream)";
    finding.detail =
        "the operand accepts the empty stream, so every stream factors into "
        "arbitrarily many zero-length segments";
    return finding;
  }
  const std::vector<int>& atoms = f.atom_ids;
  const std::vector<uint64_t> letters = consistent_letters(table, atoms);

  struct Cfg {
    int a, b;
    bool div;
    bool operator<(const Cfg& o) const {
      return std::tie(a, b, div) < std::tie(o.a, o.b, o.div);
    }
  };
  struct Edge {
    Cfg prev;
    int letter;
    bool ca, cb;
  };
  std::map<Cfg, Edge> parent;
  std::deque<Cfg> work;
  const Cfg root{f.start, f.start, false};
  work.push_back(root);
  std::optional<Cfg> goal;
  while (!work.empty() && !goal) {
    Cfg c = work.front();
    work.pop_front();
    if (c.div && f.accept[c.a] && f.accept[c.b]) {
      goal = c;
      break;
    }
    for (size_t li = 0; li < letters.size(); ++li) {
      const uint64_t l = letters[li];
      for (int ca = 0; ca < 2; ++ca) {
        if (ca && !f.accept[c.a]) continue;
        for (int cb = 0; cb < 2; ++cb) {
          if (cb && !f.accept[c.b]) continue;
          Cfg n;
          n.a = f.step(ca ? f.start : c.a, l);
          n.b = f.step(cb ? f.start : c.b, l);
          n.div = c.div || (ca != cb);
          if (n.a == root.a && n.b == root.b && n.div == root.div) continue;
          if (parent
                  .emplace(n, Edge{c, static_cast<int>(li), ca != 0, cb != 0})
                  .second) {
            work.push_back(n);
          }
        }
      }
    }
  }
  if (!goal) return std::nullopt;

  struct Move {
    int letter;
    bool ca, cb;
  };
  std::vector<Move> moves;
  for (Cfg c = *goal; !(c.a == root.a && c.b == root.b && c.div == root.div);) {
    const Edge& e = parent.at(c);
    moves.push_back({e.letter, e.ca, e.cb});
    c = e.prev;
  }
  std::reverse(moves.begin(), moves.end());

  std::vector<uint64_t> word;
  std::vector<int> cuts_a;
  std::vector<int> cuts_b;
  for (const Move& m : moves) {
    const int pos = static_cast<int>(word.size());
    if (m.ca) cuts_a.push_back(pos);
    if (m.cb) cuts_b.push_back(pos);
    word.push_back(letters[m.letter]);
  }

  auto cut_list = [&](const std::vector<int>& cuts) {
    if (cuts.empty()) return std::string("only at the end");
    std::string out = "after ";
    for (size_t i = 0; i < cuts.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(cuts[i]);
    }
    return out + " packet(s)";
  };

  AmbiguityFinding finding;
  finding.is_iter = true;
  finding.witness = render_word(table, atoms, word);
  std::ostringstream d;
  d << "a " << word.size()
    << "-packet stream of this class factors into segments cut "
    << cut_list(cuts_a) << " or cut " << cut_list(cuts_b);
  finding.detail = d.str();
  return finding;
}

// ---------------------------------------------------------- domain cycles
//
// A split/iter case set is a set of open cut positions; a cut stays live
// only while the operand's domain automaton is in a live (non-dead) state.
// When the live part of the domain is acyclic, every segment has bounded
// length and at most n_states cuts can be open at once.  A live cycle means
// segments of unbounded length, i.e. the case set can grow with the stream.

bool has_live_cycle(const Dfa& d) {
  const int n = d.n_states();
  std::vector<bool> live(n, false);
  for (int s = 0; s < n; ++s) live[s] = !d.is_dead(s);
  // Iterative DFS over live states, consistent letters only.
  std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
  for (int s0 = 0; s0 < n; ++s0) {
    if (!live[s0] || color[s0] != 0) continue;
    std::vector<std::pair<int, size_t>> stack{{s0, 0}};
    color[s0] = 1;
    while (!stack.empty()) {
      auto& [s, li] = stack.back();
      if (li >= d.letters.size()) {
        color[s] = 2;
        stack.pop_back();
        continue;
      }
      const int t = d.step(s, d.letters[li++]);
      if (!live[t]) continue;
      if (color[t] == 1) return true;
      if (color[t] == 0) {
        color[t] = 1;
        stack.emplace_back(t, 0);
      }
    }
  }
  return false;
}

// ------------------------------------------------------------ tree walk

// Bound of one subtree, per instance (i.e. per guard-trie leaf).
struct SubtreeBound {
  bool state_bounded = true;
  uint64_t registers = 0;  // persistent registers, valid when state_bounded
  std::string unbounded_reason;
  bool cost_bounded = true;
  std::string cost_reason;
  uint64_t steps = 0;      // op step() invocations per packet
  uint64_t dfa_steps = 0;  // DFA table lookups per packet
  uint64_t atoms = 0;      // predicate atoms evaluated per packet
  uint64_t fold_arity = 0; // widest case merge in the subtree
  bool contains_scope = false;
};

class Certifier {
 public:
  Certifier(const core::CompiledQuery& query, ResourceCertificate& cert)
      : query_(query), cert_(cert) {
    for (const auto& site : query.decomp_sites) {
      if (site.op != nullptr && site.op->node_id() >= 0) {
        sites_[site.op] = &site;
      }
    }
  }

  SubtreeBound run() { return walk(query_.root.get(), 1); }

  void ambiguity() {
    // Iterates the recorded sites in build order (the sites_ map is keyed
    // by pointer, so its order is not stable across runs).
    for (const auto& site_ref : query_.decomp_sites) {
      const core::DecompSite* site = &site_ref;
      if (site->op == nullptr || site->op->node_id() < 0) continue;
      if (!site->ambiguous) continue;
      std::optional<AmbiguityFinding> f =
          site->is_iter ? star_witness(*site->left, *query_.table)
                        : concat_witness(*site->left, *site->right,
                                         *query_.table);
      if (!f) {
        // The builder flagged the site but the tracked product found no
        // double parse (conservative verdicts can disagree only in this
        // direction is NOT guaranteed, so keep the honest warning).
        AmbiguityFinding g;
        g.is_iter = site->is_iter;
        g.witness = "(no concrete witness found)";
        g.detail = "flagged by the §3.3 product check";
        f = g;
      }
      cert_.ambiguities.push_back(std::move(*f));
      cert_.unambiguous = false;
    }
  }

 private:
  const core::CompiledQuery& query_;
  ResourceCertificate& cert_;
  std::map<const Op*, const core::DecompSite*> sites_;

  static SubtreeBound leaf(uint64_t registers) {
    SubtreeBound b;
    b.registers = registers;
    b.steps = 1;
    return b;
  }

  static void absorb(SubtreeBound& into, const SubtreeBound& sub) {
    into.state_bounded = into.state_bounded && sub.state_bounded;
    if (into.unbounded_reason.empty()) {
      into.unbounded_reason = sub.unbounded_reason;
    }
    into.cost_bounded = into.cost_bounded && sub.cost_bounded;
    if (into.cost_reason.empty()) into.cost_reason = sub.cost_reason;
    into.registers = sat_add(into.registers, sub.registers);
    into.steps = sat_add(into.steps, sub.steps);
    into.dfa_steps = sat_add(into.dfa_steps, sub.dfa_steps);
    into.atoms = sat_add(into.atoms, sub.atoms);
    into.fold_arity = std::max(into.fold_arity, sub.fold_arity);
    into.contains_scope = into.contains_scope || sub.contains_scope;
  }

  // Scales a per-instance bound by a case/leaf multiplier.
  static SubtreeBound scaled(const SubtreeBound& sub, uint64_t n) {
    SubtreeBound b = sub;
    b.registers = sat_mul(sub.registers, n);
    b.steps = sat_mul(sub.steps, n);
    b.dfa_steps = sat_mul(sub.dfa_steps, n);
    b.atoms = sat_mul(sub.atoms, n);
    return b;
  }

  SubtreeBound walk(const Op* op, uint64_t touch_mult);
  SubtreeBound walk_decomp(const Op* op, uint64_t touch_mult);
  SubtreeBound walk_scope(const core::ParamScopeOp* scope,
                          uint64_t touch_mult);
};

SubtreeBound Certifier::walk_decomp(const Op* op, uint64_t touch_mult) {
  // split(f, g) keeps the unsplit f run plus one (frozen f, live g) case
  // per open cut; iter(f) keeps one (aggregate, live f run) entry per open
  // cut.  Cuts stay open while the segment automaton is live.
  const auto it = sites_.find(op);
  const core::DecompSite* site = it == sites_.end() ? nullptr : it->second;
  const bool is_iter = site != nullptr && site->is_iter;

  std::vector<const Op*> kids;
  op->collect_children(kids);
  SubtreeBound self;
  self.steps = 1;
  std::vector<SubtreeBound> sub;
  sub.reserve(kids.size());
  for (const Op* k : kids) sub.push_back(walk(k, touch_mult));

  const Dfa* seg = nullptr;  // automaton whose liveness keeps a cut open
  if (site != nullptr) {
    seg = is_iter ? site->left.get() : site->right.get();
  }
  uint64_t cases = 0;
  std::string why;
  if (seg == nullptr) {
    why = "no recorded domain automaton for the decomposition";
  } else if (has_live_cycle(*seg)) {
    why = std::string(is_iter ? "iter" : "split") +
          " operand admits unbounded segments (live cycle in its domain "
          "automaton), so the open-case set can grow with the stream";
  } else {
    // A cut opened at position p survives at most n_states packets (its
    // domain run visits distinct live states, so it must die within n
    // steps), giving n_states + 1 simultaneously open cuts; +1 for the
    // seeded empty-prefix case (split) / fresh entry (iter).
    cases = static_cast<uint64_t>(seg->n_states()) + 2;
  }
  for (const SubtreeBound& s : sub) {
    if (s.contains_scope) {
      why = "parameter scope nested under split/iter";
      break;
    }
  }

  if (!why.empty()) {
    for (const SubtreeBound& s : sub) absorb(self, s);
    self.state_bounded = false;
    self.unbounded_reason = why;
    self.cost_bounded = false;
    if (self.cost_reason.empty()) self.cost_reason = why;
    // One domain-automaton step per packet regardless.
    self.dfa_steps = sat_add(self.dfa_steps, 1);
    return self;
  }

  self.fold_arity = cases;
  if (is_iter) {
    // Each entry carries the running aggregate plus a live f run.
    SubtreeBound per_entry = sub[0];
    per_entry.registers = sat_add(per_entry.registers, 1);
    absorb(self, scaled(per_entry, cases));
  } else {
    // The unsplit f run, plus per case a frozen f and a live g; only g is
    // stepped per packet for existing cases (f is stepped once).
    SubtreeBound fb = sub[0];
    SubtreeBound gb = sub[1];
    absorb(self, fb);
    SubtreeBound per_case;
    per_case.registers = sat_add(fb.registers, gb.registers);
    per_case.steps = gb.steps;
    per_case.dfa_steps = gb.dfa_steps;
    per_case.atoms = gb.atoms;
    per_case.state_bounded = fb.state_bounded && gb.state_bounded;
    per_case.cost_bounded = gb.cost_bounded;
    absorb(self, scaled(per_case, cases));
  }
  // The segment automaton advances once per packet per case.
  self.dfa_steps = sat_add(self.dfa_steps, sat_add(cases, 1));
  self.atoms =
      sat_add(self.atoms, static_cast<uint64_t>(seg->n_bits()));
  return self;
}

SubtreeBound Certifier::walk_scope(const core::ParamScopeOp* scope,
                                   uint64_t touch_mult) {
  ScopeLevel level;
  level.n_params = scope->n_params();
  level.sparse = !scope->eager();

  // Worst-case leaves touched per packet: one candidate path per extracted
  // candidate plus the default branch, per parameter level.
  uint64_t touched = 1;
  uint64_t cand_atoms = 0;
  for (const auto& atoms : scope->cand_atoms()) {
    std::string rendered;
    for (const auto& a : atoms) {
      if (!rendered.empty()) rendered += ", ";
      rendered += a.to_string();
    }
    level.key_atoms.push_back(rendered.empty() ? "(none)" : rendered);
    cand_atoms += atoms.size();
    touched = sat_mul(touched, atoms.size() + 1);
  }

  const size_t level_index = cert_.levels.size();
  cert_.levels.push_back(level);  // reserve position (outermost first)

  SubtreeBound inner =
      walk(scope->inner(), level.sparse ? sat_mul(touch_mult, touched) : kSat);

  ScopeLevel& lv = cert_.levels[level_index];
  lv.bounded = inner.state_bounded;
  lv.unbounded_reason = inner.unbounded_reason;
  lv.per_key_registers = inner.registers;
  lv.bytes_per_key = sat_add(sat_mul(inner.registers, kBytesPerRegister),
                             kLeafOverheadBytes);
  lv.touched_per_packet =
      level.sparse ? sat_mul(touch_mult, touched) : kSat;

  SubtreeBound self;
  self.steps = 1;
  self.contains_scope = true;
  self.fold_arity = inner.fold_arity;
  // The scope's own registers (trie bookkeeping) are charged to the level
  // quota; to the enclosing level this subtree costs nothing persistent.
  self.registers = 0;
  self.state_bounded = true;
  if (!level.sparse) {
    self.cost_bounded = false;
    self.cost_reason =
        "eager parameter scope steps every materialized leaf on every "
        "packet";
    absorb(self, scaled(inner, 1));
    self.registers = 0;
    self.state_bounded = true;  // eager affects cost, not per-key state
    self.unbounded_reason.clear();
  } else {
    SubtreeBound stepped = scaled(inner, touched);
    self.cost_bounded = inner.cost_bounded;
    self.cost_reason = inner.cost_reason;
    self.steps = sat_add(self.steps, stepped.steps);
    self.dfa_steps = stepped.dfa_steps;
    self.atoms = sat_add(stepped.atoms, cand_atoms);
  }
  return self;
}

SubtreeBound Certifier::walk(const Op* op, uint64_t touch_mult) {
  using namespace core;
  if (const auto* scope = dynamic_cast<const ParamScopeOp*>(op)) {
    return walk_scope(scope, touch_mult);
  }
  if (dynamic_cast<const SplitOp*>(op) != nullptr ||
      dynamic_cast<const IterOp*>(op) != nullptr) {
    return walk_decomp(op, touch_mult);
  }
  if (dynamic_cast<const ConstOp*>(op) != nullptr) return leaf(0);
  if (dynamic_cast<const LastFieldOp*>(op) != nullptr) return leaf(1);
  if (dynamic_cast<const ParamRefOp*>(op) != nullptr) return leaf(1);
  if (const auto* m = dynamic_cast<const MatchOp*>(op)) {
    SubtreeBound b = leaf(1);
    b.dfa_steps = 1;
    b.atoms = static_cast<uint64_t>(m->dfa().n_bits());
    return b;
  }
  if (const auto* c = dynamic_cast<const CondOp*>(op)) {
    SubtreeBound b = leaf(1);
    b.dfa_steps = 1;
    b.atoms = static_cast<uint64_t>(c->re().n_bits());
    std::vector<const Op*> kids;
    c->collect_children(kids);
    for (const Op* k : kids) absorb(b, walk(k, touch_mult));
    return b;
  }
  if (const auto* f = dynamic_cast<const FoldOp*>(op)) {
    // AggAcc: count + numeric fold (+ integral flag folded into one word).
    SubtreeBound b = leaf(2);
    b.fold_arity = 2;
    (void)f;
    return b;
  }
  // Structural combinators: one register for bookkeeping (comp's filter
  // gate) plus the children.
  SubtreeBound b = leaf(dynamic_cast<const CompOp*>(op) != nullptr ? 1 : 0);
  std::vector<const Op*> kids;
  op->collect_children(kids);
  for (const Op* k : kids) absorb(b, walk(k, touch_mult));
  return b;
}

}  // namespace

ResourceCertificate certify(const CompiledProgram& prog,
                            const std::string& main) {
  ResourceCertificate cert;
  cert.main = main;

  Certifier certifier(prog.query, cert);
  certifier.ambiguity();
  const SubtreeBound root = certifier.run();

  cert.fixed_registers = root.registers;
  cert.fixed_bytes =
      sat_add(sat_mul(root.registers, kBytesPerRegister), kFixedBaseBytes);
  cert.state_bounded = root.state_bounded;
  cert.unbounded_reason = root.unbounded_reason;
  for (const ScopeLevel& lv : cert.levels) {
    cert.state_bounded = cert.state_bounded && lv.bounded;
    // Eager levels step every materialized leaf; their touched count is not
    // a static bound, so they don't contribute a trie width.
    if (lv.sparse) {
      cert.guard_trie_width =
          std::max(cert.guard_trie_width, lv.touched_per_packet);
    }
  }
  if (!cert.levels.empty()) {
    cert.bytes_per_key = cert.levels.front().bytes_per_key;
  }

  cert.cost_bounded = root.cost_bounded;
  cert.op_steps_per_packet = root.steps;
  cert.dfa_steps_per_packet = root.dfa_steps;
  cert.atoms_per_packet = root.atoms;
  cert.fold_arity = root.fold_arity;

  // Window widths: a sliding window (`recent`) runs staggered engine panes,
  // a tumbling window (`every`) one engine at a time.
  cert.window_instances =
      prog.window == CompiledProgram::Window::Recent ? 8 : 1;

  // Tier selection: the certificate's verdicts gate the structural proof.
  core::SpecGate gate = certificate_gate(cert);
  core::SpecDecision decision =
      core::analyze_spec_explained(prog.query, &gate);
  cert.tier = decision.specialized() ? "specialized" : "interpreted";
  cert.tier_reason = decision.reason;
  cert.tier_chain = decision.chain;
  return cert;
}

namespace {

std::string first_unbounded_reason(const ResourceCertificate& cert) {
  if (!cert.unbounded_reason.empty()) return cert.unbounded_reason;
  for (const ScopeLevel& lv : cert.levels) {
    if (!lv.bounded) return lv.unbounded_reason;
  }
  return "state not bounded by the scope keys";
}

}  // namespace

core::SpecGate certificate_gate(const ResourceCertificate& cert) {
  core::SpecGate gate;
  gate.unambiguous = cert.unambiguous;
  gate.state_bounded = cert.state_bounded;
  if (!cert.unambiguous && !cert.ambiguities.empty()) {
    gate.detail = cert.ambiguities.front().detail;
  } else if (!cert.state_bounded) {
    gate.detail = first_unbounded_reason(cert);
  }
  return gate;
}

Diagnostics certificate_diagnostics(const ResourceCertificate& cert, int line,
                                    const CertifyOptions& opts) {
  Diagnostics out;
  const std::string where =
      cert.main.empty() ? std::string() : "'" + cert.main + "': ";
  for (const AmbiguityFinding& a : cert.ambiguities) {
    out.push_back(Diagnostic::warning(
        "NQ100", line,
        where + (a.is_iter ? "ambiguous iter factorization" : "ambiguous split decomposition") +
            "; witness " + a.witness + " — " + a.detail));
  }
  if (!cert.state_bounded) {
    out.push_back(Diagnostic::warning(
        "NQ101", line, where + "per-key state is not statically bounded: " +
                           first_unbounded_reason(cert)));
  }
  if (!cert.cost_bounded || cert.op_steps_per_packet > opts.cost_threshold) {
    std::string cost = cert.cost_bounded
                           ? std::to_string(cert.op_steps_per_packet) +
                                 " operator steps"
                           : "unbounded work";
    out.push_back(Diagnostic::warning(
        "NQ102", line,
        where + "worst-case per-packet cost is " + cost +
            " (threshold " + std::to_string(opts.cost_threshold) + ")"));
  }
  return out;
}

void certificate_json(const ResourceCertificate& cert, obs::JsonWriter& w) {
  w.begin_object();
  if (!cert.main.empty()) w.key("main").value(cert.main);
  w.key("unambiguous").value(cert.unambiguous);
  w.key("ambiguities").begin_array();
  for (const AmbiguityFinding& a : cert.ambiguities) {
    w.begin_object();
    w.key("operator").value(a.is_iter ? "iter" : "split");
    w.key("witness").value(a.witness);
    w.key("detail").value(a.detail);
    w.end_object();
  }
  w.end_array();

  w.key("state_bounded").value(cert.state_bounded);
  if (!cert.unbounded_reason.empty()) {
    w.key("unbounded_reason").value(cert.unbounded_reason);
  }
  w.key("levels").begin_array();
  for (const ScopeLevel& lv : cert.levels) {
    w.begin_object();
    w.key("params").value(lv.n_params);
    w.key("mode").value(lv.sparse ? "sparse" : "eager");
    w.key("key_atoms").begin_array();
    for (const std::string& k : lv.key_atoms) w.value(k);
    w.end_array();
    w.key("bounded").value(lv.bounded);
    if (lv.bounded) {
      w.key("per_key_registers").value(lv.per_key_registers);
      w.key("bytes_per_key").value(lv.bytes_per_key);
    } else {
      w.key("unbounded_reason").value(lv.unbounded_reason);
    }
    // Meaningless for eager levels (every materialized leaf is stepped).
    if (lv.sparse) {
      w.key("touched_per_packet").value(lv.touched_per_packet);
    } else {
      w.key("touched_per_packet").null();
    }
    w.end_object();
  }
  w.end_array();
  w.key("fixed_registers").value(cert.fixed_registers);
  w.key("fixed_bytes").value(cert.fixed_bytes);
  w.key("bytes_per_key").value(cert.bytes_per_key);
  w.key("window_instances").value(cert.window_instances);

  w.key("cost_bounded").value(cert.cost_bounded);
  if (cert.cost_bounded) {
    w.key("atoms_per_packet").value(cert.atoms_per_packet);
    w.key("dfa_steps_per_packet").value(cert.dfa_steps_per_packet);
    w.key("op_steps_per_packet").value(cert.op_steps_per_packet);
  }
  w.key("guard_trie_width").value(cert.guard_trie_width);
  w.key("fold_arity").value(cert.fold_arity);

  w.key("tier").value(cert.tier);
  w.key("tier_reason").value(cert.tier_reason);
  w.key("tier_chain").begin_array();
  for (const std::string& step : cert.tier_chain) w.value(step);
  w.end_array();
  w.end_object();
}

std::string certificate_summary(const ResourceCertificate& cert) {
  std::ostringstream out;
  if (!cert.main.empty()) out << cert.main << ":\n";
  out << "  tier: " << cert.tier << " — " << cert.tier_reason << "\n";
  for (const std::string& step : cert.tier_chain) {
    out << "    " << step << "\n";
  }
  out << "  unambiguous: " << (cert.unambiguous ? "yes" : "no") << "\n";
  for (const AmbiguityFinding& a : cert.ambiguities) {
    out << "    " << (a.is_iter ? "iter" : "split") << " witness " << a.witness
        << " — " << a.detail << "\n";
  }
  out << "  state: "
      << (cert.state_bounded ? "bounded" : "not statically bounded") << ", "
      << cert.levels.size() << " scope level(s), fixed " << cert.fixed_bytes
      << " B";
  if (cert.window_instances > 1) {
    out << " x " << cert.window_instances << " window panes";
  }
  if (!cert.state_bounded && !cert.unbounded_reason.empty()) {
    out << " — " << cert.unbounded_reason;
  }
  out << "\n";
  for (size_t i = 0; i < cert.levels.size(); ++i) {
    const ScopeLevel& lv = cert.levels[i];
    out << "    level " << i << " (" << (lv.sparse ? "sparse" : "eager")
        << ", " << lv.n_params << " param";
    if (lv.n_params != 1) out << "s";
    out << "): ";
    if (lv.bounded) {
      out << lv.per_key_registers << " registers / " << lv.bytes_per_key
          << " B per key";
    } else {
      out << "unbounded — " << lv.unbounded_reason;
    }
    if (lv.sparse) {
      out << ", <= " << lv.touched_per_packet << " leaves touched per packet";
    } else {
      out << ", every materialized leaf stepped per packet";
    }
    out << "\n";
  }
  out << "  cost: ";
  if (cert.cost_bounded) {
    out << "<= " << cert.op_steps_per_packet << " op steps, "
        << cert.dfa_steps_per_packet << " DFA steps, " << cert.atoms_per_packet
        << " atom evals per packet";
  } else {
    out << "not statically bounded";
  }
  out << "\n";
  return out.str();
}

}  // namespace netqre::lang
