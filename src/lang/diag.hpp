// Structured compiler diagnostics.
//
// Every front-end stage (lexer, parser, semantic analysis, lowering) reports
// problems as Diagnostic values: a severity, a stable rule code, a 1-based
// source line and a human-readable message.  The analysis pass collects them
// into a list so one run reports *all* problems; the lexer/parser/lowerer
// still throw on the first fatal problem but carry the same Diagnostic, so
// the engine, the tests and netqre-lint share one reporting format.
//
// Rule codes:
//   NQ000  syntax error (lexer / parser)
//   NQ001  undefined parameter, field or stream-function reference
//   NQ002  unused declared parameter or aggregation binder      (warning)
//   NQ003  arity / type mismatch in a stream-function call
//   NQ004  unsatisfiable predicate conjunction
//   NQ005  ambiguous split / iter operand (unambiguity, §3.3)   (warning)
//   NQ006  recent(t) / every(t) inside core operators (§3.6)
//   NQ007  other lowering error (semantic problem found while compiling)
//
// Certificate rules (lang/certify.hpp, computed on the lowered query):
//   NQ100  ambiguous split / iter with a concrete witness stream  (warning)
//   NQ101  per-key state not statically bounded                   (warning)
//   NQ102  worst-case per-packet cost above threshold             (warning)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace netqre::lang {

struct Diagnostic {
  enum class Severity : uint8_t { Error, Warning };

  Severity severity = Severity::Error;
  std::string code = "NQ000";
  int line = 0;  // 1-based; 0 = no source position
  std::string message;

  [[nodiscard]] bool is_error() const { return severity == Severity::Error; }

  // "line 4: error[NQ001]: undefined name 'foo'" (line part omitted when 0).
  [[nodiscard]] std::string to_string() const {
    std::string out;
    if (line > 0) out += "line " + std::to_string(line) + ": ";
    out += severity == Severity::Error ? "error" : "warning";
    out += "[" + code + "]: " + message;
    return out;
  }

  static Diagnostic error(std::string code, int line, std::string message) {
    return {Severity::Error, std::move(code), line, std::move(message)};
  }
  static Diagnostic warning(std::string code, int line, std::string message) {
    return {Severity::Warning, std::move(code), line, std::move(message)};
  }
};

using Diagnostics = std::vector<Diagnostic>;

inline bool has_errors(const Diagnostics& diags) {
  for (const auto& d : diags) {
    if (d.is_error()) return true;
  }
  return false;
}

}  // namespace netqre::lang
