// Static resource certification for compiled NetQRE queries.
//
// A ResourceCertificate is a per-query proof object computed by abstract
// interpretation over the lowered operator tree:
//
//   1. Ambiguity analysis (§3.3): every split/iter decomposition recorded by
//      the builder is re-checked with a witness-tracking product
//      construction; an ambiguous site yields a concrete packet-class string
//      that two different parses can both consume.
//   2. State-cardinality bounds: per parameter-scope level, the number of
//      persistent registers one concrete key costs, converted to a
//      bytes-per-key quota.  Split/iter case sets are bounded only when the
//      operand's domain automaton has no live cycle (segments of bounded
//      length); otherwise the level is honestly reported unbounded.
//   3. Worst-case per-packet cost: predicate atoms evaluated, DFA steps and
//      operator steps per packet, with the guard trie's touched-leaf width
//      (candidates + default per level) folded in.
//
// The certificate feeds three surfaces: the NQ100-NQ102 lint rules
// (netqre-lint), engine-tier selection (core::analyze_spec_explained via a
// SpecGate distilled from the certificate), and the netqre-monitor /statz
// endpoint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/codegen.hpp"
#include "lang/diag.hpp"
#include "lang/lower.hpp"
#include "obs/json.hpp"

namespace netqre::lang {

// One ambiguous split/iter decomposition, with a concrete witness stream.
struct AmbiguityFinding {
  bool is_iter = false;
  // Witness packet-class string, e.g. "[syn==1 & !ack==1] [ack==1]": a
  // stream drawn from these classes parses in two different ways.
  std::string witness;
  // How the two parses differ ("splits after packet 1 and after packet 2").
  std::string detail;
};

// State bound for one parameter-scope level (outermost first).
struct ScopeLevel {
  int n_params = 0;
  bool sparse = true;  // false: eager fallback (every leaf stepped)
  // Rendered candidate atoms per parameter ("srcip == x").
  std::vector<std::string> key_atoms;
  // Per concrete key: persistent registers and the bytes-per-key quota.
  // Valid only when `bounded`; an unbounded level (split/iter case sets
  // that can grow with the stream) reports why instead.
  bool bounded = true;
  uint64_t per_key_registers = 0;
  uint64_t bytes_per_key = 0;
  std::string unbounded_reason;
  // Worst-case guard-trie leaves touched per packet at this level
  // (candidate paths + default), cumulative with enclosing levels.
  uint64_t touched_per_packet = 1;
};

struct ResourceCertificate {
  std::string main;

  // (1) unambiguity proof.
  bool unambiguous = true;
  std::vector<AmbiguityFinding> ambiguities;

  // (2) state bounds.
  bool state_bounded = true;  // every level and the fixed part are bounded
  // Why the fixed (outside-any-scope) part is unbounded; empty when it is.
  std::string unbounded_reason;
  std::vector<ScopeLevel> levels;
  uint64_t fixed_registers = 0;  // registers outside any scope
  uint64_t fixed_bytes = 0;
  uint64_t bytes_per_key = 0;  // outermost level's quota (0 without scopes)
  // Engine instances implied by the window spec (sliding windows run
  // staggered panes); total state scales by this factor.
  int window_instances = 1;

  // (3) worst-case per-packet cost.
  bool cost_bounded = true;
  uint64_t atoms_per_packet = 0;      // predicate atom evaluations
  uint64_t dfa_steps_per_packet = 0;  // DFA table lookups
  uint64_t op_steps_per_packet = 0;   // operator step() invocations
  uint64_t guard_trie_width = 1;      // max touched leaves at any level
  uint64_t fold_arity = 0;            // widest split/iter case merge

  // Engine-tier selection (checked against core::analyze_spec_explained).
  std::string tier;  // "specialized" | "interpreted"
  std::string tier_reason;
  // Proof/refutation steps from analyze_spec_explained: proven sub-shapes in
  // order, then (on refutation) the obstruction marked with a leading "✗".
  std::vector<std::string> tier_chain;
};

struct CertifyOptions {
  // NQ102 fires when op_steps_per_packet exceeds this (or is unbounded).
  uint64_t cost_threshold = 512;
};

// Certifies the compiled program's query.  `main` is only recorded in the
// certificate for reporting.
ResourceCertificate certify(const CompiledProgram& prog,
                            const std::string& main = "");

// Distills the certificate into the gate consumed by analyze_spec_explained.
core::SpecGate certificate_gate(const ResourceCertificate& cert);

// NQ100 (ambiguous split/iter), NQ101 (unbounded state), NQ102 (cost above
// threshold) — all warnings, attached to source line `line`.
Diagnostics certificate_diagnostics(const ResourceCertificate& cert,
                                    int line = 0,
                                    const CertifyOptions& opts = {});

// Serializes the certificate as one JSON object onto `w`.
void certificate_json(const ResourceCertificate& cert, obs::JsonWriter& w);

// Multi-line human-readable rendering (netqre-lint --explain-tier).
std::string certificate_summary(const ResourceCertificate& cert);

}  // namespace netqre::lang
