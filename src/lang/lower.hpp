// Lowering: NetQRE AST → compiled operator plan.
//
// This is the top half of the paper's compiler (§5–§6): stream functions are
// inlined (with parameter substitution), aggregation binders become guard-
// trie scopes, calls with per-packet arguments (hh(last.srcip, last.dstip))
// become EvalAt scopes, macro predicates are expanded, and the time-based
// filters recent(t)/every(t) are stripped into a window specification for
// the runtime (§3.6 allows them only outside the core operators).
#pragma once

#include <stdexcept>
#include <string>

#include "core/builder.hpp"
#include "lang/ast.hpp"

namespace netqre::lang {

struct LowerError : std::runtime_error {
  explicit LowerError(const std::string& msg) : std::runtime_error(msg) {}
};

struct CompiledProgram {
  core::CompiledQuery query;
  enum class Window : uint8_t { None, Every, Recent };
  Window window = Window::None;
  double window_seconds = 0;
};

// The built-in NetQRE prelude (count, count_size, filter_tcp, ...), itself
// written in NetQRE.
const std::string& stdlib_source();

// Compiles `main` from an already parsed program (prelude appended).
CompiledProgram compile_program(const Program& prog, const std::string& main);

// Parses `source` (plus the prelude) and compiles `main`.
CompiledProgram compile_source(const std::string& source,
                               const std::string& main);

}  // namespace netqre::lang
