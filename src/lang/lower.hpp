// Lowering: NetQRE AST → compiled operator plan.
//
// This is the top half of the paper's compiler (§5–§6): stream functions are
// inlined (with parameter substitution), aggregation binders become guard-
// trie scopes, calls with per-packet arguments (hh(last.srcip, last.dstip))
// become EvalAt scopes, macro predicates are expanded, and the time-based
// filters recent(t)/every(t) are stripped into a window specification for
// the runtime (§3.6 allows them only outside the core operators).
#pragma once

#include <stdexcept>
#include <string>

#include "core/builder.hpp"
#include "lang/ast.hpp"
#include "lang/diag.hpp"

namespace netqre::lang {

struct LowerError : std::runtime_error {
  explicit LowerError(Diagnostic d)
      : std::runtime_error(d.to_string()), diag(std::move(d)) {}
  LowerError(int line, const std::string& msg)
      : LowerError(Diagnostic::error("NQ007", line, msg)) {}
  explicit LowerError(const std::string& msg) : LowerError(0, msg) {}
  Diagnostic diag;
};

struct CompiledProgram {
  core::CompiledQuery query;
  enum class Window : uint8_t { None, Every, Recent };
  Window window = Window::None;
  double window_seconds = 0;
};

// The built-in NetQRE prelude (count, count_size, filter_tcp, ...), itself
// written in NetQRE.
const std::string& stdlib_source();

// Compiles `main` from an already parsed program (prelude appended).
CompiledProgram compile_program(const Program& prog, const std::string& main);

// Parses `source` (plus the prelude) and compiles `main`.
CompiledProgram compile_source(const std::string& source,
                               const std::string& main);

}  // namespace netqre::lang
