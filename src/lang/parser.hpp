// Recursive-descent parser for NetQRE programs (grammar: DESIGN.md §4).
#pragma once

#include <stdexcept>
#include <string>

#include "lang/ast.hpp"
#include "lang/diag.hpp"
#include "lang/lexer.hpp"

namespace netqre::lang {

struct ParseError : std::runtime_error {
  explicit ParseError(Diagnostic d)
      : std::runtime_error(d.to_string()), diag(std::move(d)) {}
  ParseError(int line, const std::string& msg)
      : ParseError(Diagnostic::error("NQ000", line, msg)) {}
  Diagnostic diag;
};

// Parses a complete program (sequence of sfun declarations).
Program parse_program(const std::string& source);

// Parses a single expression (used by tests).
ExpPtr parse_expression(const std::string& source);

}  // namespace netqre::lang
