// Recursive-descent parser for NetQRE programs (grammar: DESIGN.md §4).
#pragma once

#include <stdexcept>
#include <string>

#include "lang/ast.hpp"
#include "lang/lexer.hpp"

namespace netqre::lang {

struct ParseError : std::runtime_error {
  explicit ParseError(const std::string& msg) : std::runtime_error(msg) {}
};

// Parses a complete program (sequence of sfun declarations).
Program parse_program(const std::string& source);

// Parses a single expression (used by tests).
ExpPtr parse_expression(const std::string& source);

}  // namespace netqre::lang
