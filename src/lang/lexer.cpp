#include "lang/lexer.hpp"

#include <cctype>

namespace netqre::lang {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  auto push = [&](Tok k) {
    Token t;
    t.kind = k;
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: '#' or '//' to end of line.
    if (c == '#' || (c == '/' && i + 1 < src.size() && src[i + 1] == '/')) {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (ident_start(c)) {
      size_t j = i;
      while (j < src.size() && ident_char(src[j])) ++j;
      Token t;
      t.kind = Tok::Ident;
      t.text = src.substr(i, j - i);
      t.line = line;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Count dotted numeric groups to distinguish int / double / IP.
      size_t j = i;
      int groups = 1;
      bool all_digits = true;
      while (j < src.size()) {
        if (std::isdigit(static_cast<unsigned char>(src[j]))) {
          ++j;
        } else if (src[j] == '.' && j + 1 < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[j + 1]))) {
          ++groups;
          ++j;
        } else {
          break;
        }
      }
      std::string text = src.substr(i, j - i);
      Token t;
      t.line = line;
      if (groups == 4) {
        auto ip = net::parse_ip(text);
        if (!ip) throw LexError(line, "bad IP literal: " + text);
        t.kind = Tok::Ip;
        t.int_value = *ip;
      } else if (groups == 2) {
        t.kind = Tok::Double;
        t.dbl_value = std::stod(text);
      } else if (groups == 1) {
        t.kind = Tok::Int;
        t.int_value = std::stoll(text);
      } else {
        throw LexError(line, "bad numeric literal: " + text);
      }
      (void)all_digits;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '"') {
      size_t j = i + 1;
      std::string text;
      while (j < src.size() && src[j] != '"') {
        if (src[j] == '\\' && j + 1 < src.size()) {
          ++j;
          switch (src[j]) {
            case 'n': text += '\n'; break;
            case 'r': text += '\r'; break;
            case 't': text += '\t'; break;
            default: text += src[j];
          }
        } else {
          text += src[j];
        }
        ++j;
      }
      if (j >= src.size()) {
        throw LexError(line, "unterminated string literal");
      }
      Token t;
      t.kind = Tok::Str;
      t.text = std::move(text);
      t.line = line;
      out.push_back(std::move(t));
      i = j + 1;
      continue;
    }
    auto two = [&](char n) {
      return i + 1 < src.size() && src[i + 1] == n;
    };
    switch (c) {
      case '(': push(Tok::LParen); break;
      case ')': push(Tok::RParen); break;
      case '{': push(Tok::LBrace); break;
      case '}': push(Tok::RBrace); break;
      case '[': push(Tok::LBracket); break;
      case ']': push(Tok::RBracket); break;
      case ',': push(Tok::Comma); break;
      case ';': push(Tok::Semi); break;
      case ':': push(Tok::Colon); break;
      case '?': push(Tok::Question); break;
      case '.': push(Tok::Dot); break;
      case '*': push(Tok::Star); break;
      case '+': push(Tok::Plus); break;
      case '/': push(Tok::Slash); break;
      case '%': push(Tok::Percent); break;
      case '-': push(Tok::Minus); break;
      case '|':
        if (two('|')) {
          push(Tok::OrOr);
          ++i;
        } else {
          push(Tok::Pipe);
        }
        break;
      case '&':
        if (two('&')) {
          push(Tok::AndAnd);
          ++i;
        } else {
          push(Tok::Amp);
        }
        break;
      case '!':
        if (two('=')) {
          push(Tok::Ne);
          ++i;
        } else {
          push(Tok::Bang);
        }
        break;
      case '=':
        if (two('=')) {
          push(Tok::Eq);
          ++i;
        } else {
          push(Tok::Assign);
        }
        break;
      case '<':
        if (two('=')) {
          push(Tok::Le);
          ++i;
        } else {
          push(Tok::Lt);
        }
        break;
      case '>':
        if (two('>')) {
          push(Tok::Shr);
          ++i;
        } else if (two('=')) {
          push(Tok::Ge);
          ++i;
        } else {
          push(Tok::Gt);
        }
        break;
      default:
        throw LexError(line,
                       "unexpected character '" + std::string(1, c) + "'");
    }
    ++i;
  }
  push(Tok::End);
  return out;
}

}  // namespace netqre::lang
