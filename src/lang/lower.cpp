#include "lang/lower.hpp"

#include "lang/certify.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "lang/parser.hpp"

namespace netqre::lang {
namespace {

using core::AggOp;
using core::BinKind;
using core::Formula;
using core::QueryBuilder;
using core::Re;
using core::Type;
using core::Value;

Type surface_type(const std::string& name, int line) {
  if (name == "int") return Type::Int;
  if (name == "bool") return Type::Bool;
  if (name == "double") return Type::Double;
  if (name == "string") return Type::String;
  if (name == "IP") return Type::Ip;
  if (name == "Port") return Type::Port;
  if (name == "Conn") return Type::Conn;
  if (name == "packet") return Type::Packet;
  if (name == "action") return Type::Action;
  if (name == "re") return Type::Bool;  // regex-valued helper sfun
  throw LowerError(line, "unknown type '" + name + "'");
}

BinKind bin_kind(const std::string& op, int line) {
  if (op == "+") return BinKind::Add;
  if (op == "-") return BinKind::Sub;
  if (op == "*") return BinKind::Mul;
  if (op == "/") return BinKind::Div;
  if (op == ">") return BinKind::Gt;
  if (op == ">=") return BinKind::Ge;
  if (op == "<") return BinKind::Lt;
  if (op == "<=") return BinKind::Le;
  if (op == "==") return BinKind::Eq;
  if (op == "!=") return BinKind::Ne;
  if (op == "&&") return BinKind::And;
  if (op == "||") return BinKind::Or;
  throw LowerError(line, "unknown operator '" + op + "'");
}

struct Binding {
  enum class Kind : uint8_t { Slot, Lit };
  Kind kind = Kind::Lit;
  int slot = -1;
  Value lit;
  Type type = Type::Int;
  int64_t shift = 0;  // binding is (slot + shift), from args like x+1
};

using Env = std::map<std::string, Binding>;

class Lowerer {
 public:
  explicit Lowerer(const Program& prog) : prog_(prog) {}

  CompiledProgram compile(const std::string& main_name) {
    const SFun* main = prog_.find(main_name);
    if (!main) throw LowerError("no sfun named '" + main_name + "'");

    CompiledProgram out;
    Env env;
    std::vector<int> slots;
    std::vector<std::string> names;
    for (const auto& [t, n] : main->params) {
      Type ty = surface_type(t, main->line);
      int slot = b_.new_param(n, ty);
      env[n] = {Binding::Kind::Slot, slot, Value::undef(), ty};
      slots.push_back(slot);
      names.push_back(n);
    }

    // Strip leading recent(t)/every(t) from a composition chain (§3.6:
    // time-based filtering lives outside the core operators).
    ExpPtr stripped = strip_window(main->body, out);

    QueryBuilder::Expr e = lower(*stripped, env);
    if (!slots.empty()) {
      e = b_.aggregate(AggOp::Sum, slots, std::move(e));
    }
    out.query = b_.finish(std::move(e), std::move(names));
    return out;
  }

 private:
  const Program& prog_;
  QueryBuilder b_;
  std::vector<std::string> stack_;  // inlining recursion guard

  // Comp chains parse left-associated, so the window call sits at the
  // bottom of the left spine; rebuild the chain without it.
  ExpPtr strip_window(const ExpPtr& body, CompiledProgram& out) {
    if (body->kind != Exp::Kind::Comp) return body;
    const ExpPtr& head = body->kids[0];
    if (head->kind == Exp::Kind::Call &&
        (head->name == "recent" || head->name == "every")) {
      if (head->kids.size() != 1 || head->kids[0]->kind != Exp::Kind::Lit) {
        throw LowerError(head->line,
                         head->name + "(t) needs a numeric literal");
      }
      out.window = head->name == "recent" ? CompiledProgram::Window::Recent
                                          : CompiledProgram::Window::Every;
      out.window_seconds = head->kids[0]->lit.as_double();
      return body->kids[1];
    }
    ExpPtr stripped = strip_window(head, out);
    if (stripped == head) return body;
    auto node = std::make_shared<Exp>(*body);
    node->kids[0] = std::move(stripped);
    return node;
  }

  [[noreturn]] void fail(const Exp& e, const std::string& msg) const {
    throw LowerError(e.line, msg);
  }

  // ---- predicates --------------------------------------------------------

  Formula operand_atom(const std::string& field, const std::string& op,
                       const PredExp::Operand& rhs, Env& env, int line) {
    auto make_lit = [&](Value v) -> Formula {
      if (op == "==") return b_.atom_eq(field, std::move(v));
      if (op == "!=") return Formula::negate(b_.atom_eq(field, std::move(v)));
      if (op == "<") return b_.atom_cmp(field, core::CmpOp::Lt, std::move(v));
      if (op == "<=") return b_.atom_cmp(field, core::CmpOp::Le, std::move(v));
      if (op == ">") return b_.atom_cmp(field, core::CmpOp::Gt, std::move(v));
      if (op == ">=") return b_.atom_cmp(field, core::CmpOp::Ge, std::move(v));
      if (op == "contains") {
        return b_.atom_cmp(field, core::CmpOp::Contains, std::move(v));
      }
      throw LowerError(line, "bad predicate operator '" + op + "'");
    };
    if (rhs.kind == PredExp::Operand::Kind::Literal) {
      return make_lit(rhs.lit);
    }
    auto it = env.find(rhs.name);
    if (it == env.end()) {
      throw LowerError(line,
                       "unknown name '" + rhs.name + "' in predicate");
    }
    if (it->second.kind == Binding::Kind::Lit) {
      Value v = it->second.lit;
      if (rhs.offset + it->second.shift != 0) {
        v = core::BinOp::apply(
            BinKind::Add, v, Value::integer(rhs.offset + it->second.shift));
      }
      return make_lit(std::move(v));
    }
    const int64_t shift = rhs.offset + it->second.shift;
    if (op == "==") {
      return b_.atom_param(field, it->second.slot, shift);
    }
    if (op == "!=") {
      return Formula::negate(b_.atom_param(field, it->second.slot, shift));
    }
    throw LowerError(line, "parameters may only be compared with == or !=");
  }

  Formula lower_pred(const PredExp& p, Env& env) {
    switch (p.kind) {
      case PredExp::Kind::True:
        return Formula::make_true();
      case PredExp::Kind::Cmp:
        return operand_atom(p.field, p.op, p.rhs, env, p.line);
      case PredExp::Kind::And:
        return Formula::conj(lower_pred(p.kids[0], env),
                             lower_pred(p.kids[1], env));
      case PredExp::Kind::Or:
        return Formula::disj(lower_pred(p.kids[0], env),
                             lower_pred(p.kids[1], env));
      case PredExp::Kind::Not:
        return Formula::negate(lower_pred(p.kids[0], env));
      case PredExp::Kind::Macro:
        return lower_macro(p, env);
    }
    throw LowerError(p.line, "bad predicate");
  }

  Formula lower_macro(const PredExp& p, Env& env) {
    auto proto_atom = [&](net::Proto proto) {
      return b_.atom_eq("proto", Value::integer(static_cast<int>(proto)));
    };
    auto conn_param = [&](const PredExp::Operand& arg) -> Formula {
      if (arg.kind != PredExp::Operand::Kind::Name) {
        throw LowerError(p.line, "macro expects a Conn parameter");
      }
      auto it = env.find(arg.name);
      if (it == env.end() || it->second.kind != Binding::Kind::Slot) {
        throw LowerError(p.line,
                         "unknown Conn parameter '" + arg.name + "'");
      }
      return b_.atom_param("conn", it->second.slot);
    };
    if (p.macro == "is_tcp") {
      Formula f = proto_atom(net::Proto::Tcp);
      if (!p.macro_args.empty()) {
        f = Formula::conj(std::move(f), conn_param(p.macro_args[0]));
      }
      return f;
    }
    if (p.macro == "is_udp") {
      Formula f = proto_atom(net::Proto::Udp);
      if (!p.macro_args.empty()) {
        f = Formula::conj(std::move(f), conn_param(p.macro_args[0]));
      }
      return f;
    }
    if (p.macro == "in_conn") {
      return conn_param(p.macro_args.at(0));
    }
    throw LowerError(p.line,
                     "unknown predicate macro '" + p.macro + "'");
  }

  // Converts an expression used in predicate position (filter args) into a
  // PredExp: comparisons, &&, ||, macro calls.
  PredExp exp_to_pred(const Exp& e) {
    PredExp out;
    out.line = e.line;
    switch (e.kind) {
      case Exp::Kind::Bin: {
        if (e.op == "&&" || e.op == "||") {
          out.kind = e.op == "&&" ? PredExp::Kind::And : PredExp::Kind::Or;
          out.kids = {exp_to_pred(*e.kids[0]), exp_to_pred(*e.kids[1])};
          return out;
        }
        out.kind = PredExp::Kind::Cmp;
        const Exp& lhs = *e.kids[0];
        if (lhs.kind == Exp::Kind::Name) {
          out.field = lhs.name;
        } else if (lhs.kind == Exp::Kind::FieldOf) {
          // Dotted custom field (sip.method == "INVITE").
          out.field = lhs.name == "last" ? lhs.field
                                         : lhs.name + "." + lhs.field;
        } else {
          fail(e, "predicate comparisons need a field on the left");
        }
        out.op = e.op;
        out.rhs = exp_to_operand(*e.kids[1]);
        return out;
      }
      case Exp::Kind::Call: {
        out.kind = PredExp::Kind::Macro;
        out.macro = e.name;
        for (const auto& k : e.kids) out.macro_args.push_back(exp_to_operand(*k));
        return out;
      }
      default:
        fail(e, "expected a predicate");
    }
  }

  PredExp::Operand exp_to_operand(const Exp& e) {
    PredExp::Operand op;
    switch (e.kind) {
      case Exp::Kind::Lit:
        op.lit = e.lit;
        return op;
      case Exp::Kind::Name:
        op.kind = PredExp::Operand::Kind::Name;
        op.name = e.name;
        return op;
      case Exp::Kind::Bin:
        // x + k / x - k
        if ((e.op == "+" || e.op == "-") &&
            e.kids[0]->kind == Exp::Kind::Name &&
            e.kids[1]->kind == Exp::Kind::Lit) {
          op.kind = PredExp::Operand::Kind::Name;
          op.name = e.kids[0]->name;
          op.offset = e.kids[1]->lit.as_int() * (e.op == "-" ? -1 : 1);
          return op;
        }
        [[fallthrough]];
      default:
        fail(e, "expected a literal or parameter operand");
    }
  }

  // ---- regular expressions ----------------------------------------------

  Re lower_re(const ReExp& r, Env& env) {
    switch (r.kind) {
      case ReExp::Kind::Eps: return Re::eps();
      case ReExp::Kind::Any: return Re::any();
      case ReExp::Kind::Pred: return Re::pred_of(lower_pred(r.pred, env));
      case ReExp::Kind::Concat:
        return Re::concat(lower_re(r.kids[0], env), lower_re(r.kids[1], env));
      case ReExp::Kind::Alt:
        return Re::alt(lower_re(r.kids[0], env), lower_re(r.kids[1], env));
      case ReExp::Kind::Star: return Re::star(lower_re(r.kids[0], env));
      case ReExp::Kind::Plus: return Re::plus(lower_re(r.kids[0], env));
      case ReExp::Kind::Opt: return Re::opt(lower_re(r.kids[0], env));
      case ReExp::Kind::And:
        return Re::conj(lower_re(r.kids[0], env), lower_re(r.kids[1], env));
      case ReExp::Kind::Not: return Re::negate(lower_re(r.kids[0], env));
    }
    throw LowerError(r.line, "bad regex");
  }

  // True when `e` denotes a regex (regex literal, concat sugar, or a call /
  // reference to an sfun declared with return type `re`).
  bool is_regex_exp(const Exp& e) const {
    switch (e.kind) {
      case Exp::Kind::Regex:
      case Exp::Kind::Concat:
        return true;
      case Exp::Kind::Call:
      case Exp::Kind::Name: {
        const SFun* f = prog_.find(e.name);
        return f && f->ret_type == "re";
      }
      default:
        return false;
    }
  }

  Re lower_re_exp(const Exp& e, Env& env) {
    switch (e.kind) {
      case Exp::Kind::Regex:
        return lower_re(e.re, env);
      case Exp::Kind::Concat: {
        Re out = lower_re_exp(*e.kids[0], env);
        for (size_t i = 1; i < e.kids.size(); ++i) {
          out = Re::concat(std::move(out), lower_re_exp(*e.kids[i], env));
        }
        return out;
      }
      case Exp::Kind::Call:
      case Exp::Kind::Name: {
        const SFun* f = prog_.find(e.name);
        if (!f || f->ret_type != "re") fail(e, "expected a regex");
        Env callee = bind_static_args(*f, e, env);
        if (f->body->kind == Exp::Kind::Cond) fail(e, "re sfun must be a regex");
        return lower_re_exp(*f->body, callee);
      }
      default:
        fail(e, "expected a regex");
    }
  }

  // ---- expressions --------------------------------------------------------

  Env bind_static_args(const SFun& f, const Exp& call, Env& env) {
    if (call.kind == Exp::Kind::Name && !f.params.empty()) {
      fail(call, "'" + f.name + "' needs " + std::to_string(f.params.size()) +
                     " arguments");
    }
    if (call.kind == Exp::Kind::Call && call.kids.size() != f.params.size()) {
      fail(call, "'" + f.name + "' arity mismatch");
    }
    Env out;
    for (size_t i = 0; i < f.params.size(); ++i) {
      const Exp& arg = *call.kids[i];
      out[f.params[i].second] = static_binding(arg, env, f.name);
    }
    return out;
  }

  // Resolves a static call argument: literal, caller parameter, or
  // parameter +/- constant (synack(y, x+1), §4.2).
  Binding static_binding(const Exp& arg, Env& env,
                         const std::string& callee) {
    Binding b;
    if (arg.kind == Exp::Kind::Lit) {
      b.kind = Binding::Kind::Lit;
      b.lit = arg.lit;
      b.type = arg.lit.type();
      return b;
    }
    if (arg.kind == Exp::Kind::Name && env.contains(arg.name)) {
      return env[arg.name];
    }
    if (arg.kind == Exp::Kind::Bin && (arg.op == "+" || arg.op == "-") &&
        arg.kids[0]->kind == Exp::Kind::Name &&
        env.contains(arg.kids[0]->name) &&
        arg.kids[1]->kind == Exp::Kind::Lit) {
      b = env[arg.kids[0]->name];
      const int64_t k =
          arg.kids[1]->lit.as_int() * (arg.op == "-" ? -1 : 1);
      if (b.kind == Binding::Kind::Lit) {
        b.lit = core::BinOp::apply(BinKind::Add, b.lit, Value::integer(k));
      } else {
        b.shift += k;
      }
      return b;
    }
    fail(arg, "argument to '" + callee + "' must be a literal or parameter");
  }

  QueryBuilder::Expr lower_sfun_call(const SFun& f, const Exp& call,
                                     Env& env) {
    if (std::ranges::find(stack_, f.name) != stack_.end()) {
      fail(call, "recursive sfun '" + f.name + "'");
    }
    stack_.push_back(f.name);

    // Classify arguments: static (literal / caller parameter) vs dynamic
    // (per-packet expressions such as last.srcip).
    std::vector<int> dyn_slots;
    std::vector<std::string> dyn_keys;
    Env callee;
    // First pass: allocate dynamic slots contiguously.
    for (size_t i = 0; i < f.params.size(); ++i) {
      const Exp& arg = *call.kids[i];
      const auto& [ptype, pname] = f.params[i];
      const bool dynamic =
          arg.kind == Exp::Kind::FieldOf && arg.name == "last";
      if (dynamic) {
        Type ty = surface_type(ptype, call.line);
        int slot = b_.new_param(pname, ty);
        dyn_slots.push_back(slot);
        dyn_keys.push_back(arg.field);
        callee[pname] = {Binding::Kind::Slot, slot, Value::undef(), ty};
      }
    }
    for (size_t i = 0; i < f.params.size(); ++i) {
      const auto& [ptype, pname] = f.params[i];
      if (callee.contains(pname)) continue;  // dynamic, already bound
      const Exp& arg = *call.kids[i];
      callee[pname] = static_binding(arg, env, f.name);
    }

    QueryBuilder::Expr body = lower(*f.body, callee);
    if (!dyn_slots.empty()) {
      body = b_.eval_at(dyn_slots, dyn_keys, std::move(body));
    }
    stack_.pop_back();
    return body;
  }

  QueryBuilder::Expr lower(const Exp& e, Env& env) {
    switch (e.kind) {
      case Exp::Kind::Lit:
        return b_.constant(e.lit);

      case Exp::Kind::Name: {
        if (e.name == "last") return b_.last_field("conn");
        auto it = env.find(e.name);
        if (it != env.end()) {
          if (it->second.kind == Binding::Kind::Slot) {
            return b_.param_ref(it->second.slot);
          }
          return b_.constant(it->second.lit);
        }
        const SFun* f = prog_.find(e.name);
        if (f) {
          if (!f->params.empty()) fail(e, "'" + e.name + "' needs arguments");
          if (f->ret_type == "re") return b_.match(lower_re_exp(e, env));
          Env empty;
          if (std::ranges::find(stack_, f->name) != stack_.end()) {
            fail(e, "recursive sfun '" + f->name + "'");
          }
          stack_.push_back(f->name);
          auto out = lower(*f->body, empty);
          stack_.pop_back();
          return out;
        }
        fail(e, "unknown name '" + e.name + "'");
      }

      case Exp::Kind::FieldOf: {
        if (e.name == "last") return b_.last_field(e.field);
        auto it = env.find(e.name);
        if (it != env.end() && it->second.kind == Binding::Kind::Slot &&
            it->second.type == Type::Conn) {
          core::ProjOp::Component c;
          if (e.field == "srcip") c = core::ProjOp::Component::SrcIp;
          else if (e.field == "dstip") c = core::ProjOp::Component::DstIp;
          else if (e.field == "srcport") c = core::ProjOp::Component::SrcPort;
          else if (e.field == "dstport") c = core::ProjOp::Component::DstPort;
          else fail(e, "unknown Conn component '" + e.field + "'");
          return b_.proj(c, b_.param_ref(it->second.slot));
        }
        fail(e, "unknown base '" + e.name + "' in field access");
      }

      case Exp::Kind::Call: {
        if (e.name == "filter") {
          Formula f = Formula::make_true();
          for (const auto& k : e.kids) {
            f = Formula::conj(std::move(f),
                              lower_pred(exp_to_pred(*k), env));
          }
          return b_.filter(std::move(f));
        }
        if (e.name == "exists" || e.name == "exist") {
          Formula f = Formula::make_true();
          for (const auto& k : e.kids) {
            f = Formula::conj(std::move(f),
                              lower_pred(exp_to_pred(*k), env));
          }
          return b_.exists(std::move(f));
        }
        if (e.name == "alert" || e.name == "block") {
          std::vector<QueryBuilder::Expr> args;
          for (const auto& k : e.kids) args.push_back(lower(*k, env));
          return b_.action(e.name, std::move(args));
        }
        if (e.name == "size" && e.kids.size() == 1) {
          return b_.last_field("len");
        }
        if (e.name == "recent" || e.name == "every") {
          fail(e, "time-based filters are only allowed at the top level");
        }
        if (is_regex_exp(e)) return b_.match(lower_re_exp(e, env));
        const SFun* f = prog_.find(e.name);
        if (!f) fail(e, "unknown function '" + e.name + "'");
        if (f->params.size() != e.kids.size()) {
          fail(e, "'" + e.name + "' arity mismatch");
        }
        return lower_sfun_call(*f, e, env);
      }

      case Exp::Kind::Regex:
      case Exp::Kind::Concat:
        return b_.match(lower_re_exp(e, env));

      case Exp::Kind::Cond: {
        const Exp& c = *e.kids[0];
        // `re ? last` is a filter: composition reads only its definedness,
        // so lower `last` to a stateless constant (see QueryBuilder::filter).
        const bool filter_shaped = e.kids.size() == 2 &&
                                   e.kids[1]->kind == Exp::Kind::Name &&
                                   e.kids[1]->name == "last";
        QueryBuilder::Expr then_e =
            filter_shaped ? b_.constant(Value::boolean(true))
                          : lower(*e.kids[1], env);
        std::optional<QueryBuilder::Expr> else_e;
        if (e.kids.size() == 3) else_e = lower(*e.kids[2], env);
        if (is_regex_exp(c)) {
          Re re = lower_re_exp(c, env);
          if (else_e) {
            return b_.cond_else(std::move(re), std::move(then_e),
                                std::move(*else_e));
          }
          return b_.cond(std::move(re), std::move(then_e));
        }
        return b_.ternary(lower(c, env), std::move(then_e),
                          std::move(else_e));
      }

      case Exp::Kind::Bin:
        return b_.bin(bin_kind(e.op, e.line), lower(*e.kids[0], env),
                      lower(*e.kids[1], env));

      case Exp::Kind::Split: {
        // Right-fold: split(e1, ..., en, agg) = split(e1, split(..., agg)).
        QueryBuilder::Expr out = lower(*e.kids.back(), env);
        for (size_t i = e.kids.size() - 1; i-- > 0;) {
          out = b_.split(lower(*e.kids[i], env), std::move(out), e.agg);
        }
        return out;
      }

      case Exp::Kind::Iter: {
        // Peephole (§6): iter(/./ ? v, agg) with a constant or last-field v
        // fuses into a per-packet fold with incremental aggregation.
        const Exp& f = *e.kids[0];
        if (f.kind == Exp::Kind::Cond && f.kids.size() == 2 &&
            f.kids[0]->kind == Exp::Kind::Regex &&
            f.kids[0]->re.kind == ReExp::Kind::Any) {
          const Exp& v = *f.kids[1];
          if (v.kind == Exp::Kind::Lit) {
            return b_.fold_const(e.agg, v.lit);
          }
          if (v.kind == Exp::Kind::FieldOf && v.name == "last") {
            return b_.fold_field(e.agg, v.field);
          }
        }
        return b_.iter(lower(*e.kids[0], env), e.agg);
      }

      case Exp::Kind::Agg: {
        Env inner = env;
        std::vector<int> slots;
        for (const auto& [t, n] : e.binders) {
          Type ty = surface_type(t, e.line);
          int slot = b_.new_param(n, ty);
          inner[n] = {Binding::Kind::Slot, slot, Value::undef(), ty};
          slots.push_back(slot);
        }
        return b_.aggregate(e.agg, slots, lower(*e.kids[0], inner));
      }

      case Exp::Kind::Comp:
        return b_.comp(lower(*e.kids[0], env), lower(*e.kids[1], env));
    }
    throw LowerError(e.line, "bad expression");
  }
};

}  // namespace

const std::string& stdlib_source() {
  static const std::string kStdlib = R"NQRE(
# NetQRE prelude: the built-in stream functions referenced throughout the
# paper (count in §3.4, count_size and filter_tcp in §4.1/§3.6).
sfun int count = iter(/./ ? 1, sum);
sfun int count_size = iter(/./ ? last.len, sum);
sfun int count_payload = iter(/./ ? last.paylen, sum);
sfun packet filter_tcp(Conn c) = /.*[is_tcp(c)]/ ? last;
sfun packet filter_udp(Conn c) = /.*[is_udp(c)]/ ? last;
)NQRE";
  return kStdlib;
}

CompiledProgram compile_program(const Program& prog,
                                const std::string& main) {
  Lowerer lowerer(prog);
  CompiledProgram out = lowerer.compile(main);
  // Run the static certifier and record its gate on the query: engines
  // auto-select the compiled tier only behind a clean certificate, and
  // builder-compiled queries (no gate) always default to the interpreter.
  out.query.gate = certificate_gate(certify(out, main));
  return out;
}

CompiledProgram compile_source(const std::string& source,
                               const std::string& main) {
  Program prog = parse_program(stdlib_source() + source);
  return compile_program(prog, main);
}

}  // namespace netqre::lang
