#include "lang/parser.hpp"

#include <set>
#include <unordered_map>

namespace netqre::lang {
namespace {

const std::set<std::string> kTypeNames = {
    "int", "bool", "double", "string", "IP", "Port", "Conn", "packet",
    "action", "re",
};

const std::set<std::string> kAggNames = {"sum", "avg", "max", "min"};

core::AggOp agg_of(const std::string& name, int line) {
  if (name == "sum") return core::AggOp::Sum;
  if (name == "avg") return core::AggOp::Avg;
  if (name == "max") return core::AggOp::Max;
  if (name == "min") return core::AggOp::Min;
  throw ParseError(line, "unknown aggregation operator: " + name);
}

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Program program() {
    Program prog;
    while (!at(Tok::End)) prog.sfuns.push_back(sfun());
    return prog;
  }

  ExpPtr single_expression() {
    ExpPtr e = exp();
    expect(Tok::End, "end of input");
    return e;
  }

 private:
  std::vector<Token> toks_;
  size_t pos_ = 0;

  const Token& cur() const { return toks_[pos_]; }
  const Token& peek(size_t n = 1) const {
    return toks_[std::min(pos_ + n, toks_.size() - 1)];
  }
  bool at(Tok k) const { return cur().kind == k; }
  bool at_ident(const std::string& t) const {
    return cur().kind == Tok::Ident && cur().text == t;
  }
  Token eat() { return toks_[pos_++]; }
  void expect(Tok k, const std::string& what) {
    if (!at(k)) fail("expected " + what);
    ++pos_;
  }
  [[noreturn]] void fail(const std::string& msg) const {
    std::string near = cur().text.empty() ? "" : " (near '" + cur().text + "')";
    throw ParseError(cur().line, msg + near);
  }

  std::string type_name() {
    if (cur().kind != Tok::Ident || !kTypeNames.contains(cur().text)) {
      fail("expected a type name");
    }
    return eat().text;
  }

  SFun sfun() {
    if (!at_ident("sfun")) fail("expected 'sfun'");
    SFun f;
    f.line = cur().line;
    eat();
    f.ret_type = type_name();
    if (cur().kind != Tok::Ident) fail("expected function name");
    f.name = eat().text;
    if (at(Tok::LParen)) {
      eat();
      if (!at(Tok::RParen)) {
        while (true) {
          std::string t = type_name();
          if (cur().kind != Tok::Ident) fail("expected parameter name");
          f.params.emplace_back(t, eat().text);
          if (at(Tok::Comma)) {
            eat();
            continue;
          }
          break;
        }
      }
      expect(Tok::RParen, "')'");
    }
    expect(Tok::Assign, "'='");
    f.body = exp();
    expect(Tok::Semi, "';'");
    return f;
  }

  // exp := comp ; comp := cond ('>>' cond)*    (>> binds loosest)
  ExpPtr exp() {
    ExpPtr e = cond_exp();
    while (at(Tok::Shr)) {
      int line = eat().line;
      auto rhs = cond_exp();
      auto node = std::make_shared<Exp>();
      node->kind = Exp::Kind::Comp;
      node->line = line;
      node->kids = {std::move(e), std::move(rhs)};
      e = std::move(node);
    }
    return e;
  }

  // cond := or_exp ['?' cond [':' cond]]
  ExpPtr cond_exp() {
    ExpPtr c = or_exp();
    if (!at(Tok::Question)) return c;
    int line = eat().line;
    ExpPtr t = cond_exp();
    ExpPtr e;
    if (at(Tok::Colon)) {
      eat();
      e = cond_exp();
    }
    auto node = std::make_shared<Exp>();
    node->kind = Exp::Kind::Cond;
    node->line = line;
    node->kids = {std::move(c), std::move(t)};
    if (e) node->kids.push_back(std::move(e));
    return node;
  }

  ExpPtr or_exp() {
    ExpPtr e = and_exp();
    while (at(Tok::OrOr)) {
      int line = eat().line;
      e = binary("||", line, std::move(e), and_exp());
    }
    return e;
  }

  ExpPtr and_exp() {
    ExpPtr e = cmp_exp();
    while (at(Tok::AndAnd)) {
      int line = eat().line;
      e = binary("&&", line, std::move(e), cmp_exp());
    }
    return e;
  }

  ExpPtr cmp_exp() {
    ExpPtr e = add_exp();
    while (at(Tok::Gt) || at(Tok::Ge) || at(Tok::Lt) || at(Tok::Le) ||
           at(Tok::Eq) || at(Tok::Ne)) {
      Token op = eat();
      static const std::unordered_map<Tok, std::string> kOps = {
          {Tok::Gt, ">"}, {Tok::Ge, ">="}, {Tok::Lt, "<"},
          {Tok::Le, "<="}, {Tok::Eq, "=="}, {Tok::Ne, "!="},
      };
      e = binary(kOps.at(op.kind), op.line, std::move(e), add_exp());
    }
    return e;
  }

  ExpPtr add_exp() {
    ExpPtr e = mul_exp();
    while (at(Tok::Plus) || at(Tok::Minus)) {
      Token op = eat();
      e = binary(op.kind == Tok::Plus ? "+" : "-", op.line, std::move(e),
                 mul_exp());
    }
    return e;
  }

  ExpPtr mul_exp() {
    ExpPtr e = primary();
    while (at(Tok::Star) || (at(Tok::Slash) && !slash_starts_regex())) {
      Token op = eat();
      e = binary(op.kind == Tok::Star ? "*" : "/", op.line, std::move(e),
                 primary());
    }
    return e;
  }

  // A '/' in operator position is division; in primary position it opens a
  // regex literal.  mul_exp only sees operator position, so always division.
  bool slash_starts_regex() const { return false; }

  ExpPtr binary(const std::string& op, int line, ExpPtr a, ExpPtr b) {
    auto node = std::make_shared<Exp>();
    node->kind = Exp::Kind::Bin;
    node->op = op;
    node->line = line;
    node->kids = {std::move(a), std::move(b)};
    return node;
  }

  ExpPtr primary() {
    int line = cur().line;
    switch (cur().kind) {
      case Tok::Int: {
        auto e = std::make_shared<Exp>();
        e->line = line;
        e->lit = core::Value::integer(eat().int_value);
        return e;
      }
      case Tok::Double: {
        auto e = std::make_shared<Exp>();
        e->line = line;
        e->lit = core::Value::real(eat().dbl_value);
        return e;
      }
      case Tok::Ip: {
        auto e = std::make_shared<Exp>();
        e->line = line;
        e->lit = core::Value::ip(static_cast<uint32_t>(eat().int_value));
        return e;
      }
      case Tok::Str: {
        auto e = std::make_shared<Exp>();
        e->line = line;
        e->lit = core::Value::str(eat().text);
        return e;
      }
      case Tok::Slash:
        return regex_literal();
      case Tok::LParen: {
        eat();
        ExpPtr e = exp();
        expect(Tok::RParen, "')'");
        return e;
      }
      case Tok::Ident:
        return ident_primary();
      default:
        fail("expected an expression");
    }
  }

  ExpPtr ident_primary() {
    int line = cur().line;
    std::string name = eat().text;

    if (name == "true" || name == "false") {
      auto e = std::make_shared<Exp>();
      e->line = line;
      e->lit = core::Value::boolean(name == "true");
      return e;
    }

    // split(e1, ..., en, aggop)
    if (name == "split" && at(Tok::LParen)) {
      eat();
      auto node = std::make_shared<Exp>();
      node->kind = Exp::Kind::Split;
      node->line = line;
      while (true) {
        if (cur().kind == Tok::Ident && kAggNames.contains(cur().text) &&
            peek().kind == Tok::RParen) {
          node->agg = agg_of(cur().text, cur().line);
          eat();
          break;
        }
        node->kids.push_back(exp());
        expect(Tok::Comma, "','");
      }
      expect(Tok::RParen, "')'");
      if (node->kids.size() < 2) fail("split needs at least two expressions");
      return node;
    }

    // iter(e, aggop)
    if (name == "iter" && at(Tok::LParen)) {
      eat();
      auto node = std::make_shared<Exp>();
      node->kind = Exp::Kind::Iter;
      node->line = line;
      node->kids.push_back(exp());
      expect(Tok::Comma, "','");
      if (cur().kind != Tok::Ident) fail("expected aggregation operator");
      node->agg = agg_of(cur().text, cur().line);
      eat();
      expect(Tok::RParen, "')'");
      return node;
    }

    // aggop{ e | T x, ... } or aggop( e | T x, ... )
    if (kAggNames.contains(name) && (at(Tok::LBrace) || at(Tok::LParen))) {
      Tok close = at(Tok::LBrace) ? Tok::RBrace : Tok::RParen;
      eat();
      auto node = std::make_shared<Exp>();
      node->kind = Exp::Kind::Agg;
      node->agg = agg_of(name, line);
      node->line = line;
      node->kids.push_back(exp());
      expect(Tok::Pipe, "'|'");
      while (true) {
        std::string t = type_name();
        if (cur().kind != Tok::Ident) fail("expected parameter name");
        node->binders.emplace_back(t, eat().text);
        if (at(Tok::Comma)) {
          eat();
          continue;
        }
        break;
      }
      expect(close, "closing bracket");
      return node;
    }

    // concat(r1, ..., rn): regex-level sugar.
    if (name == "concat" && at(Tok::LParen)) {
      eat();
      auto node = std::make_shared<Exp>();
      node->kind = Exp::Kind::Concat;
      node->line = line;
      node->kids.push_back(exp());
      while (at(Tok::Comma)) {
        eat();
        node->kids.push_back(exp());
      }
      expect(Tok::RParen, "')'");
      return node;
    }

    // Generic call.
    if (at(Tok::LParen)) {
      eat();
      auto node = std::make_shared<Exp>();
      node->kind = Exp::Kind::Call;
      node->name = name;
      node->line = line;
      if (!at(Tok::RParen)) {
        node->kids.push_back(exp());
        while (at(Tok::Comma)) {
          eat();
          node->kids.push_back(exp());
        }
      }
      expect(Tok::RParen, "')'");
      return node;
    }

    // Field access: last.srcip, c.srcip, pkt.sip.method.
    if (at(Tok::Dot)) {
      eat();
      auto node = std::make_shared<Exp>();
      node->kind = Exp::Kind::FieldOf;
      node->name = name;
      node->line = line;
      if (cur().kind != Tok::Ident) fail("expected field name");
      node->field = eat().text;
      // Dotted custom fields (sip.method): one more level.
      if (at(Tok::Dot) && peek().kind == Tok::Ident) {
        eat();
        node->field += "." + eat().text;
      }
      return node;
    }

    auto node = std::make_shared<Exp>();
    node->kind = Exp::Kind::Name;
    node->name = std::move(name);
    node->line = line;
    return node;
  }

  // ---- regex literals --------------------------------------------------

  ExpPtr regex_literal() {
    int line = cur().line;
    expect(Tok::Slash, "'/'");
    auto node = std::make_shared<Exp>();
    node->kind = Exp::Kind::Regex;
    node->line = line;
    node->re = re_alt();
    expect(Tok::Slash, "closing '/'");
    return node;
  }

  ReExp re_alt() {
    ReExp e = re_and();
    while (at(Tok::Pipe)) {
      int line = eat().line;
      ReExp rhs = re_and();
      ReExp node;
      node.kind = ReExp::Kind::Alt;
      node.line = line;
      node.kids = {std::move(e), std::move(rhs)};
      e = std::move(node);
    }
    return e;
  }

  ReExp re_and() {
    ReExp e = re_concat();
    while (at(Tok::Amp)) {
      int line = eat().line;
      ReExp rhs = re_concat();
      ReExp node;
      node.kind = ReExp::Kind::And;
      node.line = line;
      node.kids = {std::move(e), std::move(rhs)};
      e = std::move(node);
    }
    return e;
  }

  bool re_atom_start() const {
    return at(Tok::Dot) || at(Tok::LBracket) || at(Tok::LParen) ||
           at(Tok::Bang);
  }

  ReExp re_concat() {
    ReExp e = re_postfix();
    while (re_atom_start()) {
      ReExp rhs = re_postfix();
      ReExp node;
      node.kind = ReExp::Kind::Concat;
      node.kids = {std::move(e), std::move(rhs)};
      e = std::move(node);
    }
    return e;
  }

  ReExp re_postfix() {
    ReExp e = re_atom();
    while (true) {
      if (at(Tok::Star)) {
        eat();
        ReExp node;
        node.kind = ReExp::Kind::Star;
        node.kids = {std::move(e)};
        e = std::move(node);
      } else if (at(Tok::Plus)) {
        eat();
        ReExp node;
        node.kind = ReExp::Kind::Plus;
        node.kids = {std::move(e)};
        e = std::move(node);
      } else if (at(Tok::Question)) {
        eat();
        ReExp node;
        node.kind = ReExp::Kind::Opt;
        node.kids = {std::move(e)};
        e = std::move(node);
      } else {
        return e;
      }
    }
  }

  ReExp re_atom() {
    int line = cur().line;
    if (at(Tok::Dot)) {
      eat();
      ReExp e;
      e.kind = ReExp::Kind::Any;
      e.line = line;
      return e;
    }
    if (at(Tok::Bang)) {
      eat();
      ReExp inner = re_atom();
      ReExp e;
      e.kind = ReExp::Kind::Not;
      e.line = line;
      e.kids = {std::move(inner)};
      return e;
    }
    if (at(Tok::LParen)) {
      eat();
      ReExp e = re_alt();
      expect(Tok::RParen, "')'");
      return e;
    }
    if (at(Tok::LBracket)) {
      eat();
      ReExp e;
      e.kind = ReExp::Kind::Pred;
      e.line = line;
      e.pred = pred_or();
      expect(Tok::RBracket, "']'");
      return e;
    }
    fail("expected a regex atom");
  }

  // ---- predicates --------------------------------------------------------

  PredExp pred_or() {
    PredExp e = pred_and();
    while (at(Tok::OrOr)) {
      int line = eat().line;
      PredExp rhs = pred_and();
      PredExp node;
      node.kind = PredExp::Kind::Or;
      node.line = line;
      node.kids = {std::move(e), std::move(rhs)};
      e = std::move(node);
    }
    return e;
  }

  PredExp pred_and() {
    PredExp e = pred_unary();
    while (at(Tok::AndAnd)) {
      int line = eat().line;
      PredExp rhs = pred_unary();
      PredExp node;
      node.kind = PredExp::Kind::And;
      node.line = line;
      node.kids = {std::move(e), std::move(rhs)};
      e = std::move(node);
    }
    return e;
  }

  PredExp pred_unary() {
    int line = cur().line;
    if (at(Tok::Bang)) {
      eat();
      PredExp inner = pred_unary();
      PredExp node;
      node.kind = PredExp::Kind::Not;
      node.line = line;
      node.kids = {std::move(inner)};
      return node;
    }
    if (at(Tok::LParen)) {
      eat();
      PredExp e = pred_or();
      expect(Tok::RParen, "')'");
      return e;
    }
    return pred_cmp();
  }

  PredExp::Operand pred_operand() {
    PredExp::Operand op;
    switch (cur().kind) {
      case Tok::Int:
        op.lit = core::Value::integer(eat().int_value);
        return op;
      case Tok::Double:
        op.lit = core::Value::real(eat().dbl_value);
        return op;
      case Tok::Ip:
        op.lit = core::Value::ip(static_cast<uint32_t>(eat().int_value));
        return op;
      case Tok::Str:
        op.lit = core::Value::str(eat().text);
        return op;
      case Tok::Ident: {
        std::string n = eat().text;
        if (n == "true" || n == "false") {
          op.lit = core::Value::boolean(n == "true");
          return op;
        }
        op.kind = PredExp::Operand::Kind::Name;
        op.name = std::move(n);
        // name + k / name - k
        if (at(Tok::Plus) && peek().kind == Tok::Int) {
          eat();
          op.offset = eat().int_value;
        } else if (at(Tok::Minus) && peek().kind == Tok::Int) {
          eat();
          op.offset = -eat().int_value;
        }
        return op;
      }
      default:
        fail("expected a predicate operand");
    }
  }

  PredExp pred_cmp() {
    int line = cur().line;
    if (cur().kind != Tok::Ident) fail("expected a field name");
    std::string field = eat().text;
    // Dotted field (sip.method).
    if (at(Tok::Dot) && peek().kind == Tok::Ident) {
      eat();
      field += "." + eat().text;
    }
    // Macro predicate: is_tcp(c), is_udp(c), ...
    if (at(Tok::LParen)) {
      eat();
      PredExp node;
      node.kind = PredExp::Kind::Macro;
      node.macro = field;
      node.line = line;
      if (!at(Tok::RParen)) {
        node.macro_args.push_back(pred_operand());
        while (at(Tok::Comma)) {
          eat();
          node.macro_args.push_back(pred_operand());
        }
      }
      expect(Tok::RParen, "')'");
      return node;
    }
    PredExp node;
    node.kind = PredExp::Kind::Cmp;
    node.field = std::move(field);
    node.line = line;
    switch (cur().kind) {
      case Tok::Eq:
      case Tok::Assign: node.op = "=="; break;
      case Tok::Ne: node.op = "!="; break;
      case Tok::Lt: node.op = "<"; break;
      case Tok::Le: node.op = "<="; break;
      case Tok::Gt: node.op = ">"; break;
      case Tok::Ge: node.op = ">="; break;
      case Tok::Ident:
        if (cur().text == "contains") {
          node.op = "contains";
          break;
        }
        [[fallthrough]];
      default:
        fail("expected a comparison operator");
    }
    eat();
    node.rhs = pred_operand();
    return node;
  }
};

}  // namespace

Program parse_program(const std::string& source) {
  Parser p(lex(source));
  return p.program();
}

ExpPtr parse_expression(const std::string& source) {
  Parser p(lex(source));
  return p.single_expression();
}

}  // namespace netqre::lang
