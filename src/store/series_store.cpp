#include "store/series_store.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace netqre::store {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

int64_t to_seconds(uint64_t t_ns) {
  return static_cast<int64_t>(t_ns / 1'000'000'000ull);
}

// Emits a nanosecond cadence as seconds: integral when whole (the common
// 1 s+ case), fractional for sub-second cadences (0.2, not 0).
void emit_update_every(obs::JsonWriter& w, uint64_t ns) {
  if (ns % 1'000'000'000ull == 0) {
    w.value(static_cast<uint64_t>(ns / 1'000'000'000ull));
  } else {
    w.value(static_cast<double>(ns) / 1e9);
  }
}

}  // namespace

// ---------------------------------------------------------------- layout

// One dimension's rings.  Ring slots are indexed by the *context's* global
// sequence numbers modulo capacity, so every key of a context shares the
// context's timestamp rings — per-point times are stored once per context,
// not once per key (the netdata trick that makes a point cost sizeof(value),
// not sizeof(value) + sizeof(time)).
//
// Rings grow lazily up to capacity (slots fill sequentially modulo cap, so
// a ring only needs slots up to the highest one written).  Creating a key
// costs one small allocation, not the full ~22 KB retention footprint —
// which matters when a query's first sampling round materializes thousands
// of keys at once on the engine thread.
struct KeySeries {
  std::vector<double> t0;      // raw samples; NaN = gap
  std::vector<TierPoint> t1;   // aggregates of tier1_every t0 samples
  std::vector<TierPoint> t2;   // aggregates of tier2_every t1 points
  uint64_t first_seq = 0;      // t0 seq at creation (older slots = gaps)
  uint64_t last_defined_seq = 0;  // eviction rank: stalest key goes first

  explicit KeySeries(uint64_t created_seq)
      : first_seq(created_seq), last_defined_seq(created_seq) {}

  // Ensures slot `i` exists in `ring` (new slots are gaps / empty points).
  static double& slot(std::vector<double>& ring, size_t i) {
    if (i >= ring.size()) ring.resize(i + 1, kNaN);
    return ring[i];
  }
  static TierPoint& slot(std::vector<TierPoint>& ring, size_t i) {
    if (i >= ring.size()) ring.resize(i + 1);
    return ring[i];
  }
  // Reads without growing: a slot never written is a gap / empty point.
  [[nodiscard]] double t0_at(size_t i) const {
    return i < t0.size() ? t0[i] : kNaN;
  }
  [[nodiscard]] TierPoint t1_at(size_t i) const {
    return i < t1.size() ? t1[i] : TierPoint{};
  }
  [[nodiscard]] TierPoint t2_at(size_t i) const {
    return i < t2.size() ? t2[i] : TierPoint{};
  }

  [[nodiscard]] size_t bytes() const {
    return t0.capacity() * sizeof(double) +
           (t1.capacity() + t2.capacity()) * sizeof(TierPoint) +
           sizeof(*this);
  }
};

struct SeriesStore::Context {
  std::string name;
  // Shared timestamp rings, one slot per retained point and tier.
  std::vector<uint64_t> t0_times;
  std::vector<uint64_t> t1_times;
  std::vector<uint64_t> t2_times;
  uint64_t t0_seq = 0;  // rounds ingested (== next slot's seq)
  uint64_t t1_seq = 0;
  uint64_t t2_seq = 0;
  std::unordered_map<std::string, std::unique_ptr<KeySeries>> keys;
  uint64_t evicted = 0;

  // Cached registry handles (labels are per-context, bounded by the number
  // of registered queries).
  obs::Gauge* g_keys = nullptr;
  obs::Gauge* g_bytes = nullptr;
  obs::Gauge* g_tier_points[3] = {nullptr, nullptr, nullptr};
  obs::Counter* c_evicted = nullptr;

  explicit Context(const StoreConfig& cfg, std::string n)
      : name(std::move(n)),
        t0_times(cfg.tier0_points, 0),
        t1_times(cfg.tier1_points, 0),
        t2_times(cfg.tier2_points, 0) {
    auto labeled = [this](const char* base) {
      return obs::labeled_name(base, {{"context", name}});
    };
    g_keys = &obs::registry().gauge(labeled("netqre_store_keys"));
    g_bytes = &obs::registry().gauge(labeled("netqre_store_resident_bytes"));
    c_evicted =
        &obs::registry().counter(labeled("netqre_store_evicted_keys_total"));
    for (int tier = 0; tier < 3; ++tier) {
      g_tier_points[tier] = &obs::registry().gauge(obs::labeled_name(
          "netqre_store_tier_points",
          {{"context", name}, {"tier", std::to_string(tier).c_str()}}));
    }
  }

  // Number of retained (live) points at a tier right now.
  [[nodiscard]] uint64_t live_points(int tier,
                                     const StoreConfig& cfg) const {
    switch (tier) {
      case 0: return std::min<uint64_t>(t0_seq, cfg.tier0_points);
      case 1: return std::min<uint64_t>(t1_seq, cfg.tier1_points);
      default: return std::min<uint64_t>(t2_seq, cfg.tier2_points);
    }
  }

  [[nodiscard]] size_t bytes() const {
    size_t total = sizeof(*this) +
                   (t0_times.capacity() + t1_times.capacity() +
                    t2_times.capacity()) *
                       sizeof(uint64_t);
    for (const auto& [k, ks] : keys) total += k.size() + ks->bytes();
    return total;
  }
};

struct SeriesStore::Impl {
  mutable std::mutex mu;
  std::vector<std::unique_ptr<Context>> contexts;
  std::unordered_map<std::string, ContextId> by_name;

  Context* find(std::string_view name) {
    const auto it = by_name.find(std::string(name));
    return it == by_name.end() ? nullptr : contexts[it->second].get();
  }
  const Context* find(std::string_view name) const {
    return const_cast<Impl*>(this)->find(name);
  }
};

SeriesStore::SeriesStore(StoreConfig cfg)
    : cfg_(cfg), impl_(std::make_unique<Impl>()) {
  // Degenerate configs (zero-size rings) would turn every modulo below into
  // UB; clamp to 1 so a misconfigured store degrades instead of crashing.
  cfg_.tier0_points = std::max(1u, cfg_.tier0_points);
  cfg_.tier1_every = std::max(1u, cfg_.tier1_every);
  cfg_.tier1_points = std::max(1u, cfg_.tier1_points);
  cfg_.tier2_every = std::max(1u, cfg_.tier2_every);
  cfg_.tier2_points = std::max(1u, cfg_.tier2_points);
  cfg_.max_keys = std::max(1u, cfg_.max_keys);
  // Rotation reads the window it folds out of the lower tier's ring, so a
  // window must never be wider than that ring.
  cfg_.tier1_every = std::min(cfg_.tier1_every, cfg_.tier0_points);
  cfg_.tier2_every = std::min(cfg_.tier2_every, cfg_.tier1_points);
}

SeriesStore::~SeriesStore() = default;

SeriesStore::ContextId SeriesStore::context(std::string_view name) {
  std::lock_guard lock(impl_->mu);
  const auto it = impl_->by_name.find(std::string(name));
  if (it != impl_->by_name.end()) return it->second;
  impl_->contexts.push_back(
      std::make_unique<Context>(cfg_, std::string(name)));
  const ContextId id = impl_->contexts.size() - 1;
  impl_->by_name.emplace(std::string(name), id);
  return id;
}

void SeriesStore::ingest(ContextId ctx_id, uint64_t t_ns,
                         const std::vector<Sample>& samples) {
  std::lock_guard lock(impl_->mu);
  Context& ctx = *impl_->contexts.at(ctx_id);

  const uint64_t seq = ctx.t0_seq;
  const size_t slot = seq % cfg_.tier0_points;
  ctx.t0_times[slot] = t_ns;
  // Pre-clear this round's slot for every known key: a key missing from
  // `samples` records a gap, and a slot wrapping around drops its old
  // value.  Slots a ring has not grown to yet already read as gaps.
  for (auto& [k, ks] : ctx.keys) {
    if (slot < ks->t0.size()) ks->t0[slot] = kNaN;
  }

  for (const auto& s : samples) {
    auto it = ctx.keys.find(s.key);
    if (it == ctx.keys.end()) {
      if (ctx.keys.size() >= cfg_.max_keys) {
        // Evict the stalest key: the one whose last defined sample is
        // oldest.  A cardinality blowup recycles slots instead of growing.
        auto victim = ctx.keys.begin();
        for (auto cand = ctx.keys.begin(); cand != ctx.keys.end(); ++cand) {
          if (cand->second->last_defined_seq <
              victim->second->last_defined_seq) {
            victim = cand;
          }
        }
        ctx.keys.erase(victim);
        ++ctx.evicted;
        ctx.c_evicted->inc();
      }
      it = ctx.keys.emplace(s.key, std::make_unique<KeySeries>(seq)).first;
    }
    KeySeries::slot(it->second->t0, slot) = s.value;
    it->second->last_defined_seq = seq;
  }
  ctx.t0_seq = seq + 1;

  // ---- rotation: fold completed windows into the next tier up ----------
  if (ctx.t0_seq % cfg_.tier1_every == 0) {
    const size_t t1_slot = ctx.t1_seq % cfg_.tier1_points;
    ctx.t1_times[t1_slot] = t_ns;  // window end time
    for (auto& [k, ks] : ctx.keys) {
      TierPoint p;
      for (uint64_t s0 = ctx.t0_seq - cfg_.tier1_every; s0 < ctx.t0_seq;
           ++s0) {
        if (s0 < ks->first_seq) continue;  // before this key existed
        const double v = ks->t0_at(s0 % cfg_.tier0_points);
        if (!std::isnan(v)) p.add(v);
      }
      // An all-gap window need not grow the ring: unwritten reads as empty.
      if (p.count > 0 || t1_slot < ks->t1.size()) {
        KeySeries::slot(ks->t1, t1_slot) = p;
      }
    }
    ctx.t1_seq++;
    obs::tracer().record(obs::TraceKind::StoreRotate, 1, ctx.keys.size());

    if (ctx.t1_seq % cfg_.tier2_every == 0) {
      const size_t t2_slot = ctx.t2_seq % cfg_.tier2_points;
      ctx.t2_times[t2_slot] = t_ns;
      for (auto& [k, ks] : ctx.keys) {
        TierPoint p;
        for (uint64_t s1 = ctx.t1_seq - cfg_.tier2_every; s1 < ctx.t1_seq;
             ++s1) {
          p.merge(ks->t1_at(s1 % cfg_.tier1_points));
        }
        if (p.count > 0 || t2_slot < ks->t2.size()) {
          KeySeries::slot(ks->t2, t2_slot) = p;
        }
      }
      ctx.t2_seq++;
      obs::tracer().record(obs::TraceKind::StoreRotate, 2, ctx.keys.size());
    }
  }

  // ---- self-telemetry ---------------------------------------------------
  ctx.g_keys->set(static_cast<int64_t>(ctx.keys.size()));
  ctx.g_bytes->set(static_cast<int64_t>(ctx.bytes()));
  for (int tier = 0; tier < 3; ++tier) {
    ctx.g_tier_points[tier]->set(
        static_cast<int64_t>(ctx.live_points(tier, cfg_)));
  }
}

// ------------------------------------------------------------- querying

namespace {

// Iterates the live slots of one tier, oldest first, as (seq, time_s).
template <typename Fn>
void for_live_slots(uint64_t seq_end, uint32_t capacity,
                    const std::vector<uint64_t>& times, Fn&& fn) {
  const uint64_t live = std::min<uint64_t>(seq_end, capacity);
  for (uint64_t seq = seq_end - live; seq < seq_end; ++seq) {
    fn(seq, to_seconds(times[seq % capacity]));
  }
}

}  // namespace

bool SeriesStore::query(std::string_view name, const RangeQuery& q,
                        RangeResult& out) const {
  std::lock_guard lock(impl_->mu);
  const Context* ctx = impl_->find(name);
  if (!ctx) return false;

  out = RangeResult{};
  out.context = ctx->name;

  // Resolve the window.  after/before <= 0 are relative to the latest
  // ingested sample (not wall clock, so replayed/backfilled data queries
  // the same way live data does).
  int64_t latest_s = 0;
  if (ctx->t0_seq > 0) {
    latest_s =
        to_seconds(ctx->t0_times[(ctx->t0_seq - 1) % cfg_.tier0_points]);
  }
  int64_t before_s = q.before_s > 0 ? q.before_s : latest_s + q.before_s;
  int64_t after_s = q.after_s > 0 ? q.after_s : latest_s + q.after_s;
  if (after_s > before_s) std::swap(after_s, before_s);
  out.after_s = after_s;
  out.before_s = before_s;

  // Tier selection: the highest-resolution tier whose retained window
  // still reaches back to `after`.  When no tier reaches that far — the
  // store is younger than the window, or the window predates all retention
  // — answer from whichever tier reaches back furthest (finest wins ties),
  // so a 1-hour query against 3 seconds of history returns those 3 seconds
  // of raw samples instead of an empty coarse tier.
  int tier = 0;
  {
    int64_t oldest[3];
    bool has[3];
    for (int cand = 0; cand < 3; ++cand) {
      const uint64_t live = ctx->live_points(cand, cfg_);
      has[cand] = live > 0;
      if (!has[cand]) {
        oldest[cand] = std::numeric_limits<int64_t>::max();
        continue;
      }
      const std::vector<uint64_t>& times = cand == 0   ? ctx->t0_times
                                           : cand == 1 ? ctx->t1_times
                                                       : ctx->t2_times;
      const uint64_t seq_end = cand == 0   ? ctx->t0_seq
                               : cand == 1 ? ctx->t1_seq
                                           : ctx->t2_seq;
      const uint32_t cap = cand == 0   ? cfg_.tier0_points
                           : cand == 1 ? cfg_.tier1_points
                                       : cfg_.tier2_points;
      oldest[cand] = to_seconds(times[(seq_end - live) % cap]);
    }
    tier = -1;
    for (int cand = 0; cand < 3; ++cand) {
      if (has[cand] && oldest[cand] <= after_s) {
        tier = cand;
        break;
      }
    }
    if (tier < 0) {
      tier = 0;
      for (int cand = 1; cand < 3; ++cand) {
        if (oldest[cand] < oldest[tier]) tier = cand;
      }
    }
  }
  out.tier = tier;
  const uint64_t every = tier == 0 ? 1
                         : tier == 1
                             ? cfg_.tier1_every
                             : uint64_t{cfg_.tier1_every} * cfg_.tier2_every;
  out.update_every_ns = cfg_.update_every_ns * every;

  // Dimension selection, stable lexicographic order.
  std::vector<const KeySeries*> series;
  if (q.dimensions.empty()) {
    out.dimensions.reserve(ctx->keys.size());
    for (const auto& [k, ks] : ctx->keys) out.dimensions.push_back(k);
  } else {
    for (const auto& d : q.dimensions) {
      if (ctx->keys.count(d)) out.dimensions.push_back(d);
    }
  }
  std::sort(out.dimensions.begin(), out.dimensions.end());
  out.dimensions.erase(
      std::unique(out.dimensions.begin(), out.dimensions.end()),
      out.dimensions.end());
  series.reserve(out.dimensions.size());
  for (const auto& d : out.dimensions) {
    series.push_back(ctx->keys.at(d).get());
  }

  // Collect the tier's rows inside [after, before].
  auto emit = [&](uint64_t seq, int64_t t_s, int which) {
    if (t_s < after_s || t_s > before_s) return;
    RangeResult::Row row;
    row.t_s = t_s;
    row.values.reserve(series.size());
    for (const KeySeries* ks : series) {
      double v = kNaN;
      switch (which) {
        case 0:
          if (seq >= ks->first_seq) v = ks->t0_at(seq % cfg_.tier0_points);
          break;
        case 1: v = ks->t1_at(seq % cfg_.tier1_points).avg(); break;
        default: v = ks->t2_at(seq % cfg_.tier2_points).avg(); break;
      }
      row.values.push_back(v);
    }
    out.rows.push_back(std::move(row));
  };
  switch (tier) {
    case 0:
      for_live_slots(ctx->t0_seq, cfg_.tier0_points, ctx->t0_times,
                     [&](uint64_t seq, int64_t t) { emit(seq, t, 0); });
      break;
    case 1:
      for_live_slots(ctx->t1_seq, cfg_.tier1_points, ctx->t1_times,
                     [&](uint64_t seq, int64_t t) { emit(seq, t, 1); });
      break;
    default:
      for_live_slots(ctx->t2_seq, cfg_.tier2_points, ctx->t2_times,
                     [&](uint64_t seq, int64_t t) { emit(seq, t, 2); });
      break;
  }

  // Group down to at most q.points rows (average within each group; a
  // group's time is its last row's time, matching the tier rotation
  // convention of stamping windows with their end).
  if (q.points > 0 && out.rows.size() > q.points) {
    const size_t group =
        (out.rows.size() + q.points - 1) / q.points;  // ceil
    std::vector<RangeResult::Row> grouped;
    grouped.reserve(q.points);
    for (size_t i = 0; i < out.rows.size(); i += group) {
      const size_t end = std::min(i + group, out.rows.size());
      RangeResult::Row row;
      row.t_s = out.rows[end - 1].t_s;
      row.values.assign(series.size(), 0.0);
      std::vector<uint32_t> defined(series.size(), 0);
      for (size_t r = i; r < end; ++r) {
        for (size_t d = 0; d < series.size(); ++d) {
          const double v = out.rows[r].values[d];
          if (!std::isnan(v)) {
            row.values[d] += v;
            ++defined[d];
          }
        }
      }
      for (size_t d = 0; d < series.size(); ++d) {
        row.values[d] =
            defined[d] ? row.values[d] / defined[d] : kNaN;
      }
      grouped.push_back(std::move(row));
    }
    out.rows = std::move(grouped);
    out.update_every_ns *= group;
  }
  return true;
}

std::string RangeResult::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("api").value(1);
  w.key("context").value(context);
  w.key("tier").value(tier);
  w.key("update_every");
  emit_update_every(w, update_every_ns);
  w.key("after").value(after_s);
  w.key("before").value(before_s);
  w.key("points").value(static_cast<uint64_t>(rows.size()));
  w.key("dimension_names").begin_array();
  for (const auto& d : dimensions) w.value(d);
  w.end_array();
  w.key("labels").begin_array();
  w.value("time");
  for (const auto& d : dimensions) w.value(d);
  w.end_array();
  w.key("data").begin_array();
  for (const auto& row : rows) {
    w.begin_array();
    w.value(row.t_s);
    for (const double v : row.values) {
      // JsonWriter renders non-finite doubles as null, but a defined
      // integral sample should not pick up %.6g rounding, so emit
      // integers exactly.
      if (std::isnan(v)) {
        w.null();
      } else if (v == std::floor(v) && std::abs(v) < 9.0e15) {
        w.value(static_cast<int64_t>(v));
      } else {
        w.value(v);
      }
    }
    w.end_array();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string SeriesStore::contexts_json() const {
  std::lock_guard lock(impl_->mu);
  obs::JsonWriter w;
  w.begin_object();
  w.key("api").value(1);
  w.key("contexts").begin_array();
  // by_name is unordered; emit contexts sorted by name so discovery output
  // is stable across runs.
  std::vector<const Context*> ordered;
  ordered.reserve(impl_->contexts.size());
  for (const auto& c : impl_->contexts) ordered.push_back(c.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Context* a, const Context* b) {
              return a->name < b->name;
            });
  for (const Context* ctx : ordered) {
    w.begin_object();
    w.key("name").value(ctx->name);
    w.key("keys").value(static_cast<uint64_t>(ctx->keys.size()));
    w.key("evicted_keys").value(ctx->evicted);
    w.key("update_every");
    emit_update_every(w, cfg_.update_every_ns);
    int64_t first_s = 0, last_s = 0;
    if (ctx->t0_seq > 0) {
      const uint64_t live = ctx->live_points(0, cfg_);
      first_s = to_seconds(
          ctx->t0_times[(ctx->t0_seq - live) % cfg_.tier0_points]);
      last_s = to_seconds(
          ctx->t0_times[(ctx->t0_seq - 1) % cfg_.tier0_points]);
    }
    w.key("first_time").value(first_s);
    w.key("last_time").value(last_s);
    w.key("tiers").begin_array();
    const uint64_t everies[3] = {1, cfg_.tier1_every,
                                 uint64_t{cfg_.tier1_every} *
                                     cfg_.tier2_every};
    const uint32_t caps[3] = {cfg_.tier0_points, cfg_.tier1_points,
                              cfg_.tier2_points};
    for (int tier = 0; tier < 3; ++tier) {
      w.begin_object();
      w.key("tier").value(tier);
      w.key("points").value(ctx->live_points(tier, cfg_));
      w.key("capacity").value(static_cast<uint64_t>(caps[tier]));
      w.key("samples_per_point").value(everies[tier]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::vector<TierPointAt> SeriesStore::tier_points(std::string_view name,
                                                  std::string_view key,
                                                  int tier) const {
  std::lock_guard lock(impl_->mu);
  std::vector<TierPointAt> out;
  const Context* ctx = impl_->find(name);
  if (!ctx) return out;
  const auto it = ctx->keys.find(std::string(key));
  if (it == ctx->keys.end()) return out;
  const KeySeries& ks = *it->second;
  switch (tier) {
    case 0:
      for_live_slots(ctx->t0_seq, cfg_.tier0_points, ctx->t0_times,
                     [&](uint64_t seq, int64_t t) {
                       if (seq < ks.first_seq) return;
                       const double v = ks.t0_at(seq % cfg_.tier0_points);
                       TierPointAt p;
                       p.t_s = t;
                       if (!std::isnan(v)) p.point.add(v);
                       out.push_back(p);
                     });
      break;
    case 1:
      for_live_slots(ctx->t1_seq, cfg_.tier1_points, ctx->t1_times,
                     [&](uint64_t seq, int64_t t) {
                       out.push_back(
                           {t, ks.t1_at(seq % cfg_.tier1_points)});
                     });
      break;
    default:
      for_live_slots(ctx->t2_seq, cfg_.tier2_points, ctx->t2_times,
                     [&](uint64_t seq, int64_t t) {
                       out.push_back(
                           {t, ks.t2_at(seq % cfg_.tier2_points)});
                     });
      break;
  }
  return out;
}

size_t SeriesStore::resident_bytes() const {
  std::lock_guard lock(impl_->mu);
  size_t total = 0;
  for (const auto& c : impl_->contexts) total += c->bytes();
  return total;
}

uint64_t SeriesStore::evicted_keys() const {
  std::lock_guard lock(impl_->mu);
  uint64_t total = 0;
  for (const auto& c : impl_->contexts) total += c->evicted;
  return total;
}

size_t SeriesStore::keys(std::string_view name) const {
  std::lock_guard lock(impl_->mu);
  const Context* ctx = impl_->find(name);
  return ctx ? ctx->keys.size() : 0;
}

}  // namespace netqre::store
