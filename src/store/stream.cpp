#include "store/stream.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "obs/http_export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace netqre::store {

namespace {

// Trims one line off `rest`; handles both \n and \r\n endings.
bool next_line(std::string_view& rest, std::string_view& line) {
  if (rest.empty()) return false;
  const size_t nl = rest.find('\n');
  if (nl == std::string_view::npos) {
    line = rest;
    rest = {};
  } else {
    line = rest.substr(0, nl);
    rest = rest.substr(nl + 1);
  }
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return true;
}

std::string format_value(double v) {
  // Integral samples (the common case: counts) round-trip exactly; the
  // rest keep enough digits for a double.
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string render_push(std::string_view source, std::string_view context,
                        uint64_t t_ns, const std::vector<Sample>& samples) {
  std::string out = "NETQRE-STREAM v1\n";
  out += "SOURCE ";
  out += source;
  out += "\nCONTEXT ";
  out += context;
  out += "\nBEGIN ";
  out += std::to_string(t_ns);
  out += '\n';
  for (const auto& s : samples) {
    out += "SET ";
    out += s.key;
    out += ' ';
    out += format_value(s.value);
    out += '\n';
  }
  out += "END\n";
  return out;
}

std::string render_alert(std::string_view source, const AlertLine& alert) {
  std::string out = "NETQRE-STREAM v1\n";
  out += "SOURCE ";
  out += source;
  out += "\nALERT ";
  out += std::to_string(alert.t_ns);
  out += ' ';
  out += std::to_string(alert.seq);
  out += ' ';
  out += alert.rule;
  out += ' ';
  out += alert.from;
  out += ' ';
  out += alert.to;
  out += ' ';
  out += format_value(alert.value);
  if (!alert.key.empty()) {
    out += ' ';
    out += alert.key;
  }
  out += '\n';
  return out;
}

namespace {

// Splits the next space-delimited token off `rest`; false when empty.
bool next_token(std::string_view& rest, std::string_view& tok) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  if (rest.empty()) return false;
  const size_t sp = rest.find(' ');
  if (sp == std::string_view::npos) {
    tok = rest;
    rest = {};
  } else {
    tok = rest.substr(0, sp);
    rest = rest.substr(sp + 1);
  }
  return true;
}

// "ALERT <t_ns> <seq> <rule> <from> <to> <value> <key...>"; the key is the
// remainder (may contain spaces, may be absent).
bool parse_alert_line(std::string_view payload, AlertLine& out) {
  std::string_view rest = payload;
  std::string_view t_ns, seq, rule, from, to, value;
  if (!next_token(rest, t_ns) || !next_token(rest, seq) ||
      !next_token(rest, rule) || !next_token(rest, from) ||
      !next_token(rest, to) || !next_token(rest, value)) {
    return false;
  }
  char* end = nullptr;
  const std::string t_ns_s(t_ns);
  out.t_ns = std::strtoull(t_ns_s.c_str(), &end, 10);
  if (end == t_ns_s.c_str() || *end != '\0') return false;
  const std::string seq_s(seq);
  out.seq = std::strtoull(seq_s.c_str(), &end, 10);
  if (end == seq_s.c_str() || *end != '\0') return false;
  const std::string value_s(value);
  out.value = std::strtod(value_s.c_str(), &end);
  if (end == value_s.c_str() || *end != '\0') return false;
  out.rule = std::string(rule);
  out.from = std::string(from);
  out.to = std::string(to);
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  out.key = std::string(rest);
  return true;
}

}  // namespace

PushResult apply_push(SeriesStore& store, std::string_view body,
                      const AlertHandler& on_alert) {
  PushResult res;
  std::string_view rest = body;
  std::string_view line;

  if (!next_line(rest, line) || line != "NETQRE-STREAM v1") {
    res.error = "missing NETQRE-STREAM v1 header";
    return res;
  }

  std::string source;
  std::string context;
  bool in_round = false;
  uint64_t round_t_ns = 0;
  std::vector<Sample> round;

  while (next_line(rest, line)) {
    if (line.empty()) continue;
    if (line.rfind("SOURCE ", 0) == 0) {
      if (in_round) {
        res.error = "SOURCE inside a BEGIN/END round";
        return res;
      }
      source = std::string(line.substr(7));
    } else if (line.rfind("CONTEXT ", 0) == 0) {
      if (in_round) {
        res.error = "CONTEXT inside a BEGIN/END round";
        return res;
      }
      context = std::string(line.substr(8));
    } else if (line.rfind("BEGIN ", 0) == 0) {
      if (in_round || source.empty() || context.empty()) {
        res.error = in_round ? "nested BEGIN" : "BEGIN before SOURCE/CONTEXT";
        return res;
      }
      char* end = nullptr;
      const std::string ts(line.substr(6));
      round_t_ns = std::strtoull(ts.c_str(), &end, 10);
      if (end == ts.c_str() || *end != '\0') {
        res.error = "unparsable BEGIN timestamp: " + ts;
        return res;
      }
      in_round = true;
      round.clear();
    } else if (line.rfind("SET ", 0) == 0) {
      if (!in_round) {
        res.error = "SET outside a BEGIN/END round";
        return res;
      }
      // "SET <key> <value>": the value is the suffix after the *last*
      // space, so keys may themselves contain spaces (rendered string
      // parameters), as long as they don't end in one.
      const std::string_view kv = line.substr(4);
      const size_t sp = kv.rfind(' ');
      if (sp == std::string_view::npos || sp == 0) {
        res.error = "malformed SET line";
        return res;
      }
      const std::string value_text(kv.substr(sp + 1));
      char* end = nullptr;
      const double value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') {
        res.error = "unparsable SET value: " + value_text;
        return res;
      }
      round.push_back({std::string(kv.substr(0, sp)), value});
    } else if (line.rfind("ALERT ", 0) == 0) {
      if (in_round) {
        res.error = "ALERT inside a BEGIN/END round";
        return res;
      }
      if (source.empty()) {
        res.error = "ALERT before SOURCE";
        return res;
      }
      AlertLine alert;
      if (!parse_alert_line(line.substr(6), alert)) {
        res.error = "malformed ALERT line";
        return res;
      }
      if (on_alert) on_alert(source, alert);
      ++res.alerts;
    } else if (line == "END") {
      if (!in_round) {
        res.error = "END without BEGIN";
        return res;
      }
      // Series from different children stay separated per source.
      const auto ctx = store.context(source + "/" + context);
      store.ingest(ctx, round_t_ns, round);
      ++res.rounds;
      in_round = false;
    } else {
      res.error = "unknown line: " + std::string(line.substr(0, 40));
      return res;
    }
  }
  if (in_round) res.error = "body ends inside a BEGIN/END round";
  return res;
}

// ------------------------------------------------------------ endpoints

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]);
      const int lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

namespace {

// Splits "a=1&b=2" into decoded (key, value) pairs and returns the value
// for `want` (empty when absent).
std::string query_param(std::string_view query, std::string_view want) {
  std::string_view rest = query;
  while (!rest.empty()) {
    const size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    if (url_decode(pair.substr(0, eq)) == want) {
      return url_decode(pair.substr(eq + 1));
    }
  }
  return {};
}

int64_t parse_i64(const std::string& s, int64_t fallback) {
  if (s.empty()) return fallback;
  char* end = nullptr;
  const int64_t v = std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() || *end != '\0' ? fallback : v;
}

}  // namespace

void register_store_endpoints(obs::HttpServer& srv, SeriesStore& store,
                              AlertHandler on_alert) {
  srv.handle("/api/v1/contexts", [&store](const obs::HttpRequest&) {
    return obs::HttpResponse::json(store.contexts_json());
  });

  srv.handle("/api/v1/data", [&store](const obs::HttpRequest& req) {
    const std::string context = query_param(req.query, "context");
    if (context.empty()) {
      return obs::HttpResponse::json(
          "{\"error\":\"missing required parameter: context\"}", 400);
    }
    RangeQuery q;
    q.after_s = parse_i64(query_param(req.query, "after"), q.after_s);
    q.before_s = parse_i64(query_param(req.query, "before"), q.before_s);
    q.points = static_cast<uint32_t>(std::max<int64_t>(
        0, parse_i64(query_param(req.query, "points"), 0)));
    const std::string dims = query_param(req.query, "dimensions");
    std::string_view rest = dims;
    while (!rest.empty()) {
      const size_t comma = rest.find(',');
      const std::string_view d =
          comma == std::string_view::npos ? rest : rest.substr(0, comma);
      rest = comma == std::string_view::npos ? std::string_view{}
                                             : rest.substr(comma + 1);
      if (!d.empty()) q.dimensions.emplace_back(d);
    }
    RangeResult out;
    if (!store.query(context, q, out)) {
      obs::JsonWriter w;
      w.begin_object();
      w.key("error").value("unknown context: " + context);
      w.key("see").value("/api/v1/contexts");
      w.end_object();
      return obs::HttpResponse::json(w.str(), 404);
    }
    return obs::HttpResponse::json(out.to_json());
  });

  srv.handle_post("/api/v1/push", [&store, on_alert = std::move(on_alert)](
                                      const obs::HttpRequest& req) {
    const PushResult res = apply_push(store, req.body, on_alert);
    obs::JsonWriter w;
    w.begin_object();
    w.key("rounds").value(static_cast<uint64_t>(res.rounds));
    if (res.alerts > 0) {
      w.key("alerts").value(static_cast<uint64_t>(res.alerts));
    }
    if (!res.error.empty()) w.key("error").value(res.error);
    w.end_object();
    return obs::HttpResponse::json(w.str(), res.error.empty() ? 200 : 400);
  });
}

// ---------------------------------------------------------- StreamClient

int http_post_once(const std::string& host, uint16_t port,
                   const std::string& path, const std::string& body,
                   uint32_t timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return 0;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }

  std::string req = "POST " + path + " HTTP/1.1\r\nHost: " + host +
                    "\r\nContent-Type: text/plain\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
  req += body;
  size_t off = 0;
  while (off < req.size()) {
    const ssize_t n =
        ::send(fd, req.data() + off, req.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return 0;
    }
    off += static_cast<size_t>(n);
  }

  // Only the status line matters to the sender.
  std::string resp;
  char buf[1024];
  while (resp.find("\r\n") == std::string::npos && resp.size() < 4096) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t sp = resp.find(' ');
  if (sp == std::string::npos) return 0;
  return std::atoi(resp.c_str() + sp + 1);
}

struct StreamClient::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> queue;  // rendered push bodies
  bool stopping = false;
  std::thread thread;
  std::atomic<uint64_t> sent{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> failed{0};
  obs::Counter* c_sent = nullptr;
  obs::Counter* c_dropped = nullptr;
  obs::Counter* c_failed = nullptr;
};

StreamClient::StreamClient(Config cfg)
    : cfg_(std::move(cfg)), impl_(std::make_unique<Impl>()) {
  impl_->c_sent =
      &obs::registry().counter("netqre_stream_rounds_sent_total");
  impl_->c_dropped =
      &obs::registry().counter("netqre_stream_rounds_dropped_total");
  impl_->c_failed =
      &obs::registry().counter("netqre_stream_push_failures_total");
  impl_->thread = std::thread([this] {
    Impl& im = *impl_;
    for (;;) {
      std::string body;
      {
        std::unique_lock lock(im.mu);
        im.cv.wait(lock, [&] { return !im.queue.empty() || im.stopping; });
        if (im.queue.empty()) return;  // stopping with a drained queue
        body = std::move(im.queue.front());
        im.queue.pop_front();
      }
      const int status = http_post_once(cfg_.host, cfg_.port, "/api/v1/push",
                                        body, cfg_.io_timeout_ms);
      if (status == 200) {
        im.sent.fetch_add(1, std::memory_order_relaxed);
        im.c_sent->inc();
      } else {
        im.failed.fetch_add(1, std::memory_order_relaxed);
        im.c_failed->inc();
      }
    }
  });
}

StreamClient::~StreamClient() { stop(); }

void StreamClient::push(std::string_view context, uint64_t t_ns,
                        const std::vector<Sample>& samples) {
  enqueue(render_push(cfg_.source, context, t_ns, samples));
}

void StreamClient::push_alert(const AlertLine& alert) {
  enqueue(render_alert(cfg_.source, alert));
}

void StreamClient::enqueue(std::string body) {
  bool dropped = false;
  {
    std::lock_guard lock(impl_->mu);
    if (impl_->stopping) return;
    if (impl_->queue.size() >= cfg_.max_queued) {
      // The parent is away or slow: shed the oldest round, keep the
      // freshest — the store semantics are "recent history", not a WAL.
      impl_->queue.pop_front();
      dropped = true;
    }
    impl_->queue.push_back(std::move(body));
  }
  if (dropped) {
    impl_->dropped.fetch_add(1, std::memory_order_relaxed);
    impl_->c_dropped->inc();
  }
  impl_->cv.notify_one();
}

void StreamClient::stop() {
  {
    std::lock_guard lock(impl_->mu);
    if (impl_->stopping) return;
    impl_->stopping = true;
  }
  impl_->cv.notify_one();
  if (impl_->thread.joinable()) impl_->thread.join();
}

uint64_t StreamClient::rounds_sent() const {
  return impl_->sent.load(std::memory_order_relaxed);
}
uint64_t StreamClient::rounds_dropped() const {
  return impl_->dropped.load(std::memory_order_relaxed);
}
uint64_t StreamClient::push_failures() const {
  return impl_->failed.load(std::memory_order_relaxed);
}

}  // namespace netqre::store
