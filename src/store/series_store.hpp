// Time-series result store with retention tiers (DESIGN.md "Result store &
// streaming").
//
// NetQRE queries produce quantitative per-key result maps — heavy-hitter
// counts, SYN-flood scores, per-flow aggregates — but an engine only holds
// the *current* value.  The store keeps history at fixed memory cost,
// netdata-style: every registered query ("context") samples its result map
// on a cadence into tier0 raw rings, and rotation folds widening windows
// into tier1/tier2 points carrying exact min/max/sum/count, so a range
// query over the last minute reads raw samples while one over hours reads
// aggregates, from the same bounded allocation.
//
// Memory math (defaults): per key, tier0 keeps 600 raw doubles (10 min at
// 1 s cadence, 4.8 KB), tier1 keeps 360 aggregate points of 10 samples
// each (1 h, 10.1 KB), tier2 keeps 240 points of 60 samples (4 h, 6.7 KB)
// — ~22 KB/key, so the default 1024-key budget bounds a context at ~22 MB
// plus one shared timestamp ring per tier.  A query whose key cardinality
// blows past the budget evicts its stalest key (oldest last-defined
// sample) instead of growing, so a scan or a malicious workload cannot OOM
// the daemon; evictions are counted and exported.
//
// Threading: one mutex per store.  Ingest runs at sampling cadence (~1 Hz
// per context) and queries come from the HTTP surface — both cold paths.
// Never called from the per-packet hot path.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace netqre::store {

// One downsampled point: the exact aggregate of the raw samples it covers.
// `count` is the number of *defined* samples in the window (gaps — cadence
// slots where the key had no value — are excluded), so avg = sum / count
// and count == 0 marks an all-gap window.
struct TierPoint {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  uint32_t count = 0;

  void add(double v) {
    if (v < min) min = v;
    if (v > max) max = v;
    sum += v;
    ++count;
  }
  void merge(const TierPoint& o) {
    if (o.count == 0) return;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
    sum += o.sum;
    count += o.count;
  }
  [[nodiscard]] double avg() const {
    return count ? sum / static_cast<double>(count)
                 : std::numeric_limits<double>::quiet_NaN();
  }
};

struct StoreConfig {
  // Raw samples retained per key (tier0).
  uint32_t tier0_points = 600;
  // Tier0 samples folded into one tier1 point, and tier1 points retained.
  uint32_t tier1_every = 10;
  uint32_t tier1_points = 360;
  // Tier1 points folded into one tier2 point, and tier2 points retained.
  uint32_t tier2_every = 6;
  uint32_t tier2_points = 240;
  // Per-context key budget; the stalest key is evicted beyond this.
  uint32_t max_keys = 1024;
  // Nominal sampling cadence, reported through the API (the store derives
  // actual point times from the ingest timestamps, not from this).
  uint64_t update_every_ns = 1'000'000'000ull;
};

// One sampled (dimension, value) pair handed to ingest().
struct Sample {
  std::string key;
  double value = 0.0;
};

// A range-query request, netdata /api/v1/data conventions: times are unix
// seconds; after/before <= 0 mean "relative to the latest sample" (so
// after=-60, before=0 is "the last minute").  points == 0 returns the
// selected tier's native resolution; otherwise consecutive points are
// grouped (averaged) down to at most `points` rows.  An empty dimension
// list selects every key, in lexicographic order.
struct RangeQuery {
  int64_t after_s = -600;
  int64_t before_s = 0;
  uint32_t points = 0;
  std::vector<std::string> dimensions;
};

struct RangeResult {
  std::string context;
  int tier = 0;                 // which retention tier answered
  uint64_t update_every_ns = 0; // nominal cadence of that tier
  int64_t after_s = 0;          // resolved absolute window
  int64_t before_s = 0;
  std::vector<std::string> dimensions;  // stable (lexicographic) order
  // rows[i] = {t_s, v_0, ..., v_{dims-1}}; gaps are NaN (JSON null).
  struct Row {
    int64_t t_s = 0;
    std::vector<double> values;
  };
  std::vector<Row> rows;

  // {"context":...,"labels":["time",...],"data":[[t,v,...],...]} — always
  // a valid JSON document; NaN renders as null.
  [[nodiscard]] std::string to_json() const;
};

// Tier point with its resolved end timestamp — the introspection shape the
// downsampling-invariant tests check against raw history.
struct TierPointAt {
  int64_t t_s = 0;  // unix seconds of the window's last covered sample
  TierPoint point;
};

class SeriesStore {
 public:
  using ContextId = size_t;

  explicit SeriesStore(StoreConfig cfg = {});
  ~SeriesStore();

  SeriesStore(const SeriesStore&) = delete;
  SeriesStore& operator=(const SeriesStore&) = delete;

  // Registers (or finds) a named series context — one per query per
  // source.  Contexts are never removed; ids stay valid for the store's
  // lifetime.
  ContextId context(std::string_view name);

  // Appends one sample round for every dimension of `ctx` at unix time
  // `t_ns`.  Keys absent from `samples` record a gap for this slot; keys
  // never seen before are created (evicting the stalest key at the
  // budget).  Rotation into tier1/tier2 happens here when the round
  // completes a window.
  void ingest(ContextId ctx, uint64_t t_ns, const std::vector<Sample>& samples);

  // Range query; returns false when `name` names no known context.
  bool query(std::string_view name, const RangeQuery& q,
             RangeResult& out) const;

  // {"contexts":[{"name":...,"keys":N,"tiers":[...]}...]} discovery doc.
  [[nodiscard]] std::string contexts_json() const;

  // Raw history of one dimension at one tier (0 returns raw samples as
  // count==1 points).  Oldest first.  Empty when key/context is unknown.
  [[nodiscard]] std::vector<TierPointAt> tier_points(
      std::string_view name, std::string_view key, int tier) const;

  // Totals across all contexts (exported as netqre_store_* gauges too).
  [[nodiscard]] size_t resident_bytes() const;
  [[nodiscard]] uint64_t evicted_keys() const;
  [[nodiscard]] size_t keys(std::string_view name) const;

  [[nodiscard]] const StoreConfig& config() const { return cfg_; }

 private:
  struct Context;
  struct Impl;

  StoreConfig cfg_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace netqre::store
