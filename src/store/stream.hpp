// Edge → aggregator result streaming (DESIGN.md "Result store &
// streaming").
//
// Netdata's deployment pattern — "distribute the code, instead of
// centralizing the data" — applied to NetQRE result series: every edge
// monitor keeps its own store and *additionally* pushes each sampling
// round to a parent monitor, which ingests it into its own store under a
// per-source context.  The parent then serves the same /api/v1 range-query
// surface over every child's series, so dashboards talk to one aggregator
// while the packet processing stays at the edges.
//
// Wire format v1 (the POST body of /api/v1/push; text, line-oriented, in
// the spirit of netdata's BEGIN/SET/END streaming protocol):
//
//   NETQRE-STREAM v1
//   SOURCE edge-1
//   CONTEXT heavy_hitter.nqre:hh
//   BEGIN 1723200000123456789      <- unix ns of the sampling round
//   SET 10.0.0.1 42                <- key (no trailing spaces), value
//   SET 10.0.0.9 17
//   END
//   ALERT 1723200000123456789 3 syn_flood CLEAR CRITICAL 2000 value
//
// A body may carry multiple BEGIN/END rounds (catch-up after a transient
// parent outage) and may switch SOURCE/CONTEXT between rounds.  The parent
// stores a round under the context "<source>/<context>", which is how
// series from many edges stay separated ("merged per source").
//
// ALERT lines (v1 extension) carry health-engine transitions: valid after
// SOURCE, outside BEGIN/END rounds, fields
// `<t_ns> <seq> <rule> <from> <to> <value> <key>` where the key is the
// line's tail (it may contain spaces, like SET keys).  The store layer
// treats the payload as opaque strings; the parent's fleet alert view
// (obs/health.hpp) interprets them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "store/series_store.hpp"

namespace netqre::obs {
class HttpServer;
}

namespace netqre::store {

// Renders one sampling round as a push body.
[[nodiscard]] std::string render_push(std::string_view source,
                                      std::string_view context,
                                      uint64_t t_ns,
                                      const std::vector<Sample>& samples);

// One health-engine alert transition on the wire (ALERT line payload).
// `from`/`to` are the status names ("CLEAR"/"WARNING"/"CRITICAL"), opaque
// to this layer.
struct AlertLine {
  uint64_t t_ns = 0;
  uint64_t seq = 0;
  std::string rule;
  std::string from;
  std::string to;
  double value = 0;
  std::string key;  // line tail; may contain spaces, may be empty
};

// Renders one transition as a push body (header + SOURCE + ALERT line).
[[nodiscard]] std::string render_alert(std::string_view source,
                                       const AlertLine& alert);

// Called for each ALERT line a push body carries, with the body's current
// SOURCE.
using AlertHandler =
    std::function<void(std::string_view source, const AlertLine& alert)>;

// Parses a push body and ingests every round into `store` (contexts are
// created on demand).  ALERT lines go to `on_alert` (dropped when empty).
// Stops at the first malformed line.
struct PushResult {
  size_t rounds = 0;   // rounds ingested before any error
  size_t alerts = 0;   // ALERT lines delivered
  std::string error;   // empty on full success
};
PushResult apply_push(SeriesStore& store, std::string_view body,
                      const AlertHandler& on_alert = {});

// Installs the store's HTTP surface onto `srv`:
//   GET  /api/v1/contexts  series discovery (JSON)
//   GET  /api/v1/data      range query: context=...&after=-60&before=0&
//                          points=N&dimensions=a,b (JSON)
//   POST /api/v1/push      streaming ingest (wire format above); ALERT
//                          lines are forwarded to `on_alert`
void register_store_endpoints(obs::HttpServer& srv, SeriesStore& store,
                              AlertHandler on_alert = {});

// Decodes %XX and '+' in a URL query component.
[[nodiscard]] std::string url_decode(std::string_view s);

// Background push sender for an edge monitor.  push() renders the round
// and enqueues it; a worker thread POSTs queued bodies to the parent with
// connect/IO timeouts, so a dead or slow parent never stalls the engine's
// sampling cadence — when the queue is full the oldest round is dropped
// and counted (netqre_stream_rounds_dropped_total).
class StreamClient {
 public:
  struct Config {
    std::string host = "127.0.0.1";  // parent address (IPv4 dotted quad)
    uint16_t port = 0;
    std::string source = "edge";     // this child's identity at the parent
    uint32_t io_timeout_ms = 2000;   // connect / send / response timeout
    size_t max_queued = 64;          // rounds buffered while parent is away
  };

  explicit StreamClient(Config cfg);
  ~StreamClient();  // stops the sender thread

  StreamClient(const StreamClient&) = delete;
  StreamClient& operator=(const StreamClient&) = delete;

  // Enqueues one sampling round for delivery.  Never blocks.
  void push(std::string_view context, uint64_t t_ns,
            const std::vector<Sample>& samples);

  // Enqueues one alert transition (rendered as its own one-line push).
  // Never blocks; same drop-oldest policy as push().
  void push_alert(const AlertLine& alert);

  // Flushes the queue (best effort within the IO timeout) and joins.
  void stop();

  [[nodiscard]] uint64_t rounds_sent() const;
  [[nodiscard]] uint64_t rounds_dropped() const;
  [[nodiscard]] uint64_t push_failures() const;
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  struct Impl;
  void enqueue(std::string body);

  Config cfg_;
  std::unique_ptr<Impl> impl_;
};

// One blocking HTTP POST to 127-reachable `host:port` with timeouts.
// Returns the response status (0 on connect/IO failure).  Exposed for the
// tests and the client's worker.
int http_post_once(const std::string& host, uint16_t port,
                   const std::string& path, const std::string& body,
                   uint32_t timeout_ms);

}  // namespace netqre::store
