// Random program and trace generation for the differential fuzzer.
//
// Programs are drawn from a grammar that stays inside the oracle's sound
// comparison domain (see DESIGN.md "Testing & oracles"):
//
//   * Closed programs (no parameters) compose the full operator algebra —
//     split/iter over unambiguous segment regexes, `>>` composition,
//     conditionals, binary arithmetic, folds — and are compared end to end
//     against ref_eval.  Ambiguous draws (builder warnings) are discarded:
//     an ambiguous split/iter may legitimately give different (but equally
//     valid) decompositions under the reference and streaming semantics.
//   * Parameterized programs are drawn from the query-like scope families
//     of the paper's Table 1 (per-key counters, exists-style distinct
//     counts, nested superspreader shapes), where enumeration of the guard
//     trie provably coincides with the reference cross-product semantics.
//
// Traces are short (ref_eval is exponential in stream length) and
// adversarial: a tiny value universe to force parameter collisions, empty
// streams, duplicated segments, and out-of-order TCP delivered through
// net::TcpReorderer.
#pragma once

#include <random>
#include <vector>

#include "fuzz/spec.hpp"
#include "net/packet.hpp"

namespace netqre::fuzz {

using Rng = std::mt19937_64;

struct GenConfig {
  int max_depth = 3;        // expression nesting budget
  int max_atoms = 5;        // distinct predicate atoms per program
  int max_stream = 10;      // ref_eval cost bound
  int compile_tries = 40;   // redraws before giving up on an unambiguous draw
};

// Draws one well-typed program spec.  Unchecked: may be ambiguous or fail
// to compile; use next_program() for a compilable draw.
SNode random_program(Rng& rng, const GenConfig& cfg);

// Draws programs until one compiles without warnings (the differential
// domain).  Returns the spec; `rejected` is incremented for every discarded
// draw.  Throws SpecError if cfg.compile_tries draws all fail (a generator
// bug — the grammar is built to compile).
SNode next_program(Rng& rng, const GenConfig& cfg, uint64_t& rejected);

// Draws one adversarial trace of at most cfg.max_stream packets.
std::vector<net::Packet> random_trace(Rng& rng, const GenConfig& cfg);

}  // namespace netqre::fuzz
