#include "fuzz/corpus.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace netqre::fuzz {
namespace {

using net::Packet;

constexpr const char* kMagic = "netqre-fuzz-case v1";

std::string hex_encode(const std::string& raw) {
  if (raw.empty()) return "-";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(raw.size() * 2);
  for (unsigned char c : raw) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string hex_decode(const std::string& hex) {
  if (hex == "-") return {};
  if (hex.size() % 2 != 0) throw SpecError("odd-length payload hex");
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_val(hex[i]);
    const int lo = hex_val(hex[i + 1]);
    if (hi < 0 || lo < 0) throw SpecError("bad payload hex: " + hex);
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace

std::string case_to_text(const FuzzCase& c) {
  std::ostringstream out;
  out.precision(17);  // round-trip doubles (ts) exactly
  out << kMagic << '\n';
  if (!c.note.empty()) out << "note " << c.note << '\n';
  out << "prog " << print_spec(c.prog) << '\n';
  for (const auto& p : c.trace) {
    out << "pkt " << p.ts << ' ' << p.src_ip << ' ' << p.dst_ip << ' '
        << p.src_port << ' ' << p.dst_port << ' '
        << static_cast<int>(p.proto) << ' ' << static_cast<int>(p.tcp_flags)
        << ' ' << p.seq << ' ' << p.ack_no << ' ' << p.wire_len << ' '
        << hex_encode(p.payload) << '\n';
  }
  return out.str();
}

FuzzCase case_from_text(const std::string& text) {
  FuzzCase c;
  std::istringstream in(text);
  std::string line;
  bool saw_magic = false;
  bool saw_prog = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (!saw_magic) {
      if (line != kMagic) throw SpecError("missing case header: " + line);
      saw_magic = true;
      continue;
    }
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "note") {
      std::getline(ls, c.note);
      if (!c.note.empty() && c.note[0] == ' ') c.note.erase(0, 1);
    } else if (kw == "prog") {
      std::string rest;
      std::getline(ls, rest);
      c.prog = parse_spec(rest);
      saw_prog = true;
    } else if (kw == "pkt") {
      Packet p;
      int proto = 0;
      int flags = 0;
      std::string payload = "-";
      if (!(ls >> p.ts >> p.src_ip >> p.dst_ip >> p.src_port >> p.dst_port >>
            proto >> flags >> p.seq >> p.ack_no >> p.wire_len)) {
        throw SpecError("bad pkt line: " + line);
      }
      ls >> payload;  // optional
      p.proto = static_cast<net::Proto>(proto);
      p.tcp_flags = static_cast<uint8_t>(flags);
      p.payload = hex_decode(payload);
      c.trace.push_back(std::move(p));
    } else {
      throw SpecError("unknown case line: " + line);
    }
  }
  if (!saw_magic) throw SpecError("empty case file");
  if (!saw_prog) throw SpecError("case file has no prog line");
  return c;
}

FuzzCase load_case(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SpecError("cannot open case file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return case_from_text(buf.str());
}

void save_case(const FuzzCase& c, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw SpecError("cannot write case file: " + path);
  out << case_to_text(c);
  if (!out) throw SpecError("write failed: " + path);
}

std::vector<std::string> list_cases(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& e : std::filesystem::directory_iterator(dir, ec)) {
    if (e.path().extension() == ".case") out.push_back(e.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace netqre::fuzz
