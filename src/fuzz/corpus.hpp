// Replayable corpus files for fuzz cases.
//
// A case file is line-oriented text, human-editable so a minimized repro
// can double as a bug report:
//
//     # optional comment lines
//     netqre-fuzz-case v1
//     note <free text>                 (optional)
//     prog (agg sum 0 1 (condelse ...))
//     pkt <ts> <src> <dst> <sport> <dport> <proto> <flags> <seq> <ack> <len> [payload]
//     pkt ...
//
// `payload` is the hex-encoded application payload, `-` (or absent) when
// empty.  tests/corpus/ holds the checked-in seed corpus; `netqre-fuzz
// --replay` runs any file or directory of files back through the oracle.
#pragma once

#include <string>
#include <vector>

#include "fuzz/spec.hpp"
#include "net/packet.hpp"

namespace netqre::fuzz {

struct FuzzCase {
  SNode prog;
  std::vector<net::Packet> trace;
  std::string note;
};

std::string case_to_text(const FuzzCase& c);
// Throws SpecError on malformed input.
FuzzCase case_from_text(const std::string& text);

// File I/O; throws SpecError on I/O failure or malformed content.
FuzzCase load_case(const std::string& path);
void save_case(const FuzzCase& c, const std::string& path);

// All *.case files in `dir`, sorted; empty when the directory is missing.
std::vector<std::string> list_cases(const std::string& dir);

}  // namespace netqre::fuzz
