#include "fuzz/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <span>
#include <sstream>

#include "core/codegen.hpp"
#include "core/engine.hpp"
#include "core/fields.hpp"
#include "core/parallel.hpp"
#include "net/flow.hpp"
#include "net/packet_view.hpp"

namespace netqre::fuzz {
namespace {

using core::Engine;
using core::ParallelEngine;
using core::ParamScopeOp;
using core::Valuation;
using core::Value;
using net::Packet;

// Defined-equality plus numeric closeness — the comparison convention the
// property tests use (Avg results are doubles; everything else is exact).
bool values_agree(const Value& a, const Value& b) {
  if (a.defined() != b.defined()) return false;
  if (!a.defined()) return true;
  if (a.kind() == Value::Kind::Str || b.kind() == Value::Kind::Str) {
    return a == b;
  }
  return std::abs(a.as_double() - b.as_double()) <= 1e-9;
}

std::string fmt(const Value& v) { return v.to_string(); }

std::string fmt_key(const std::vector<Value>& key) {
  std::ostringstream out;
  out << '(';
  for (size_t i = 0; i < key.size(); ++i) {
    out << (i ? "," : "") << key[i].to_string();
  }
  out << ')';
  return out.str();
}

struct Checker {
  OracleReport& report;

  void expect(const std::string& path, const Value& want, const Value& got) {
    if (!values_agree(want, got)) {
      report.mismatches.push_back(path + ": expected " + fmt(want) +
                                  " got " + fmt(got));
    }
  }
};

// All packets that can affect one top-level key provably land in one shard:
// requires the sparse-scope no-op proof for every parameter plus a gated
// inner expression (otherwise the engine's dynamic re-sweeps make leaf
// states depend on packets outside the key's partition).
bool partition_safe(const ParamScopeOp& scope) {
  if (scope.eager()) return false;
  for (bool ok : scope.skip_param()) {
    if (!ok) return false;
  }
  if (scope.cand_atoms().empty() || scope.cand_atoms()[0].size() != 1) {
    return false;
  }
  return !scope.inner()->has_ungated_updates();
}

// The generated code's key packing (codegen.cpp): candidates are already
// offset-adjusted, so packing is pure bit arithmetic on their int values.
uint64_t pack_key(const std::vector<Value>& key) {
  const auto k0 = static_cast<uint64_t>(key[0].as_int());
  if (key.size() == 1) return k0;
  const auto k1 = static_cast<uint64_t>(key[1].as_int());
  return (k0 << 32) | static_cast<uint32_t>(k1);
}

}  // namespace

OracleReport run_oracle(const SNode& prog, const std::vector<Packet>& trace,
                        const OracleOptions& opt) {
  OracleReport report;
  core::CompiledQuery q = compile_spec(prog);
  report.warnings = q.warnings;
  if (!q.warnings.empty()) return report;  // outside the differential domain
  report.usable = true;
  Checker check{report};

  // Path 2: streaming engine.
  Engine eng(q);
  eng.on_stream(trace);
  const Value v_eng = eng.eval();

  // Path 1: §3 reference semantics, whole program.
  {
    Valuation val(static_cast<size_t>(q.n_slots), Value::undef());
    const Value v_ref = q.root->ref_eval(trace, val);
    check.expect("engine-vs-ref", v_ref, v_eng);
  }

  // Scope-rooted programs: per-leaf reference checks.
  const auto* scope = dynamic_cast<const ParamScopeOp*>(q.root.get());
  std::vector<std::pair<std::vector<Value>, Value>> entries;
  if (scope) {
    eng.enumerate([&](const std::vector<Value>& key, const Value& v) {
      entries.emplace_back(key, v);
    });
    for (const auto& [key, v] : entries) {
      Valuation lv(static_cast<size_t>(q.n_slots), Value::undef());
      for (size_t i = 0; i < key.size(); ++i) {
        lv[static_cast<size_t>(scope->slot_lo()) + i] = key[i];
      }
      check.expect("leaf-vs-ref @" + fmt_key(key),
                   scope->inner()->ref_eval(trace, lv), v);
      check.expect("eval_at-vs-enumerate @" + fmt_key(key), v,
                   eng.eval_at(key));
    }
    // Fresh key: the default branch must equal the reference evaluation
    // under a never-observed valuation (0x% prime far outside the trace's
    // tiny value universe).
    {
      std::vector<Value> probe(static_cast<size_t>(scope->n_params()),
                               Value::integer(999983));
      Valuation pv(static_cast<size_t>(q.n_slots), Value::undef());
      for (size_t i = 0; i < probe.size(); ++i) {
        pv[static_cast<size_t>(scope->slot_lo()) + i] = probe[i];
      }
      check.expect("eval_at-fresh-vs-ref",
                   scope->inner()->ref_eval(trace, pv), eng.eval_at(probe));
    }
  }

  // Path 5: batched ingestion.  on_batch must leave the query state
  // bit-identical to the per-packet path; an odd chunk size makes even the
  // fuzzer's tiny traces cross several batch boundaries.
  {
    Engine beng(q);
    const std::span<const Packet> all(trace);
    constexpr size_t kChunk = 3;
    for (size_t pos = 0; pos < all.size(); pos += kChunk) {
      beng.on_batch(all.subspan(pos, std::min(kChunk, all.size() - pos)));
    }
    check.expect("batch-vs-engine", v_eng, beng.eval());
    if (scope) {
      std::map<std::string, std::string> batched;
      beng.enumerate([&](const std::vector<Value>& key, const Value& v) {
        batched[fmt_key(key)] = fmt(v);
      });
      std::map<std::string, std::string> streamed;
      for (const auto& [key, v] : entries) streamed[fmt_key(key)] = fmt(v);
      if (batched != streamed) {
        report.mismatches.push_back(
            "batch-enumerate: " + std::to_string(batched.size()) +
            " entries vs engine's " + std::to_string(streamed.size()));
      }
    }
  }

  // Path 4: parallel runtime.  One shard is semantically the engine with a
  // queue in front — checked for every program, undef results included.
  // The single-shard run is fed through the move-based batch path so the
  // fuzzer also exercises feed(PacketBatch&&) dispatch.
  if (opt.check_parallel) {
    {
      ParallelEngine p1(q, 1);
      net::PacketBatch batch;
      for (const Packet& p : trace) batch.next_slot() = p;
      p1.feed(std::move(batch));
      p1.finish();
      check.expect("parallel1-vs-engine", v_eng, p1.shard_engine(0).eval());
    }
    if (scope && scope->mode().kind == core::ScopeMode::Kind::Aggregate &&
        partition_safe(*scope)) {
      report.parallel_sharded = true;
      const core::FieldRef part_field = scope->cand_atoms()[0][0].field;
      ParallelEngine::Partitioner part = [part_field](const Packet& p) {
        return static_cast<size_t>(net::mix64(static_cast<uint64_t>(
            core::extract(part_field, p).as_int())));
      };
      std::map<std::string, std::string> single;
      for (const auto& [key, v] : entries) single[fmt_key(key)] = fmt(v);
      for (int shards : opt.extra_shards) {
        ParallelEngine pn(q, shards, part);
        pn.feed(trace);
        pn.finish();
        check.expect("parallel" + std::to_string(shards) + "-aggregate",
                     v_eng, pn.aggregate(scope->mode().agg));
        std::map<std::string, std::string> merged;
        pn.enumerate_all(
            [&](const std::vector<Value>& key, const Value& v) {
              merged[fmt_key(key)] = fmt(v);
            });
        if (merged != single) {
          report.mismatches.push_back(
              "parallel" + std::to_string(shards) +
              "-enumerate: " + std::to_string(merged.size()) +
              " entries vs engine's " + std::to_string(single.size()));
        }
      }
    }
  }

  // Path 3: codegen plan, executed in process.
  if (opt.check_codegen) {
    if (auto plan = core::analyze_spec(q)) {
      report.codegen_checked = true;
      core::SpecializedMonitor mon(*plan);
      for (const auto& p : trace) mon.on_packet(p);
      check.expect("codegen-vs-engine", v_eng, mon.eval());
      if (scope) {
        for (const auto& [key, v] : entries) {
          check.expect("codegen-at @" + fmt_key(key), v, mon.eval_at(key));
        }
        // Cross-check the raw packed-key surface used by the generated C++
        // on flat plans (nested plans pack the whole chain, so at() keys do
        // not line up with the outer scope's enumerate keys).
        const bool flat = plan->key.size() ==
                          static_cast<size_t>(scope->n_params());
        if (flat) {
          for (const auto& [key, v] : entries) {
            if (!v.defined()) continue;
            check.expect("codegen-raw-at @" + fmt_key(key), v,
                         Value::integer(mon.at(pack_key(key))));
          }
        }
        std::map<std::string, std::string> mine;
        mon.enumerate([&](const std::vector<Value>& key, const Value& v) {
          mine[fmt_key(key)] = fmt(v);
        });
        std::map<std::string, std::string> theirs;
        for (const auto& [key, v] : entries) {
          if (v.defined()) theirs[fmt_key(key)] = fmt(v);
        }
        if (mine != theirs) {
          report.mismatches.push_back(
              "codegen-enumerate: " + std::to_string(mine.size()) +
              " entries vs engine's " + std::to_string(theirs.size()));
        }
      }
    }
  }

  // Path 6: the compiled execution tier — the SpecializedMonitor behind the
  // full Engine surface, exactly as tier auto-selection runs it.  Forcing
  // the tier makes the check independent of the certificate gate (builder
  // queries carry none); the Engine silently interprets when no plan
  // exists, so compare tier() first.
  if (opt.check_codegen) {
    Engine ceng(q, core::EngineTier::Compiled);
    if (ceng.tier() == std::string("specialized")) {
      report.compiled_tier_checked = true;
      ceng.on_stream(trace);
      check.expect("compiled-tier-vs-engine", v_eng, ceng.eval());
      if (scope) {
        for (const auto& [key, v] : entries) {
          check.expect("compiled-tier-at @" + fmt_key(key), v,
                       ceng.eval_at(key));
        }
        std::map<std::string, std::string> compiled;
        ceng.enumerate([&](const std::vector<Value>& key, const Value& v) {
          compiled[fmt_key(key)] = fmt(v);
        });
        std::map<std::string, std::string> interp;
        for (const auto& [key, v] : entries) {
          if (v.defined()) interp[fmt_key(key)] = fmt(v);
        }
        if (compiled != interp) {
          report.mismatches.push_back(
              "compiled-tier-enumerate: " + std::to_string(compiled.size()) +
              " entries vs engine's " + std::to_string(interp.size()));
        }
      }
    }
  }

  return report;
}

}  // namespace netqre::fuzz
