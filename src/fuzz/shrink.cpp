#include "fuzz/shrink.hpp"

#include <algorithm>

namespace netqre::fuzz {
namespace {

using net::Packet;

// Collects a preorder path list; each path indexes kid positions from the
// root, so edits can address any node.
void collect_paths(const SNode& n, std::vector<int>& prefix,
                   std::vector<std::vector<int>>& out) {
  out.push_back(prefix);
  for (size_t i = 0; i < n.kids.size(); ++i) {
    prefix.push_back(static_cast<int>(i));
    collect_paths(n.kids[i], prefix, out);
    prefix.pop_back();
  }
}

SNode* at_path(SNode& root, const std::vector<int>& path) {
  SNode* n = &root;
  for (int i : path) {
    if (static_cast<size_t>(i) >= n->kids.size()) return nullptr;
    n = &n->kids[static_cast<size_t>(i)];
  }
  return n;
}

}  // namespace

ShrinkResult shrink_case(SNode prog, std::vector<Packet> trace,
                         const FailPredicate& still_fails,
                         uint64_t max_attempts) {
  ShrinkResult r;
  auto budget = [&] { return r.attempts < max_attempts; };
  auto try_case = [&](const SNode& p, const std::vector<Packet>& t) {
    ++r.attempts;
    if (!still_fails(p, t)) return false;
    ++r.steps;
    return true;
  };

  bool progress = true;
  while (progress && budget()) {
    progress = false;

    // ---- packet deltas: drop chunks, then single packets -----------------
    for (size_t chunk = std::max<size_t>(1, trace.size() / 2);
         chunk >= 1 && budget(); chunk /= 2) {
      for (size_t lo = 0; lo < trace.size() && budget();) {
        std::vector<Packet> cand;
        cand.reserve(trace.size());
        cand.insert(cand.end(), trace.begin(),
                    trace.begin() + static_cast<long>(lo));
        const size_t hi = std::min(trace.size(), lo + chunk);
        cand.insert(cand.end(), trace.begin() + static_cast<long>(hi),
                    trace.end());
        if (try_case(prog, cand)) {
          trace = std::move(cand);
          progress = true;
          // keep lo: the next chunk shifted into this position
        } else {
          lo += chunk;
        }
      }
      if (chunk == 1) break;
    }

    // ---- spec deltas: hoist children / collapse subtrees -----------------
    std::vector<std::vector<int>> paths;
    std::vector<int> prefix;
    collect_paths(prog, prefix, paths);
    // Leaf-ward first so a single pass can collapse deep chains.
    std::stable_sort(paths.begin(), paths.end(),
                     [](const auto& a, const auto& b) {
                       return a.size() > b.size();
                     });
    for (const auto& path : paths) {
      if (!budget()) break;
      SNode* n = at_path(prog, path);
      if (!n) continue;  // tree changed shape under an earlier edit
      // Hoist each child over this node.
      for (size_t i = 0; i < n->kids.size() && budget(); ++i) {
        SNode cand_root = prog;
        SNode* spot = at_path(cand_root, path);
        SNode hoisted = spot->kids[i];
        *spot = std::move(hoisted);
        if (try_case(cand_root, trace)) {
          prog = std::move(cand_root);
          progress = true;
          break;  // node replaced; restart this path's edits on next pass
        }
      }
      if (!budget()) break;
      // A successful hoist replaced `prog`, so `n` may dangle — re-resolve.
      n = at_path(prog, path);
      if (!n) continue;
      // Collapse to the simplest expression.
      if (n->tag != "const" && !path.empty()) {
        SNode cand_root = prog;
        SNode* spot = at_path(cand_root, path);
        *spot = SNode{"const", {"0"}, {}};
        if (try_case(cand_root, trace)) {
          prog = std::move(cand_root);
          progress = true;
        }
      }
    }
  }

  r.prog = std::move(prog);
  r.trace = std::move(trace);
  return r;
}

}  // namespace netqre::fuzz
