#include "fuzz/fuzz.hpp"

#include <chrono>
#include <filesystem>

#include "fuzz/corpus.hpp"
#include "fuzz/shrink.hpp"
#include "obs/metrics.hpp"

namespace netqre::fuzz {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

FuzzSummary run_fuzz(const FuzzConfig& cfg) {
  FuzzSummary sum;
  Rng rng(cfg.seed);
  const auto t0 = Clock::now();

  auto& m_iters = obs::registry().counter("netqre_fuzz_iterations_total");
  auto& m_rejected = obs::registry().counter("netqre_fuzz_rejected_total");
  auto& m_mismatch = obs::registry().counter("netqre_fuzz_mismatches_total");
  auto& m_shrink = obs::registry().counter("netqre_fuzz_shrink_steps_total");

  if (!cfg.corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cfg.corpus_dir, ec);
  }

  for (uint64_t i = 0; i < cfg.iterations; ++i) {
    if (cfg.max_seconds > 0 && seconds_since(t0) >= cfg.max_seconds) {
      sum.time_boxed = true;
      break;
    }
    SNode prog = next_program(rng, cfg.gen, sum.rejected);
    std::vector<net::Packet> trace = random_trace(rng, cfg.gen);
    if (prog.tag == "agg") ++sum.scope_programs;

    OracleReport report = run_oracle(prog, trace, cfg.oracle);
    ++sum.iterations;
    m_iters.inc();
    if (report.parallel_sharded) ++sum.checks_parallel_sharded;
    if (report.codegen_checked) ++sum.checks_codegen;
    if (report.ok()) continue;

    ++sum.mismatches;
    m_mismatch.inc();
    sum.failures.push_back("iter " + std::to_string(i) + ": " +
                           report.mismatches.front());

    // Minimize while the oracle still disagrees, then pin the repro.
    const auto still_fails = [&](const SNode& p,
                                 const std::vector<net::Packet>& t) {
      try {
        OracleReport r = run_oracle(p, t, cfg.oracle);
        return r.usable && !r.ok();
      } catch (const SpecError&) {
        return false;
      }
    };
    ShrinkResult min = shrink_case(prog, trace, still_fails);
    sum.shrink_steps += min.steps;
    sum.shrink_attempts += min.attempts;
    m_shrink.inc(min.steps);

    if (!cfg.corpus_dir.empty() && sum.repro_files.size() < cfg.max_repros) {
      FuzzCase c;
      c.prog = std::move(min.prog);
      c.trace = std::move(min.trace);
      c.note = "minimized repro, seed " + std::to_string(cfg.seed) +
               " iteration " + std::to_string(i);
      const std::string path = cfg.corpus_dir + "/repro-" +
                               std::to_string(cfg.seed) + "-" +
                               std::to_string(i) + ".case";
      try {
        save_case(c, path);
        sum.repro_files.push_back(path);
      } catch (const SpecError& e) {
        sum.failures.push_back(std::string("corpus write failed: ") +
                               e.what());
      }
    }
  }
  m_rejected.inc(sum.rejected);
  sum.elapsed_seconds = seconds_since(t0);
  return sum;
}

int replay_corpus(const std::vector<std::string>& paths,
                  const OracleOptions& opt, std::vector<std::string>& lines) {
  std::vector<std::string> files;
  for (const auto& p : paths) {
    if (std::filesystem::is_directory(p)) {
      auto in_dir = list_cases(p);
      files.insert(files.end(), in_dir.begin(), in_dir.end());
    } else {
      files.push_back(p);
    }
  }
  int failing = 0;
  for (const auto& f : files) {
    try {
      FuzzCase c = load_case(f);
      OracleReport r = run_oracle(c.prog, c.trace, opt);
      if (!r.usable) {
        // A pinned case must stay inside the differential domain; a new
        // compiler warning on an old repro is itself a regression signal.
        ++failing;
        lines.push_back(f + ": MISMATCH compiled with warnings: " +
                        (r.warnings.empty() ? "?" : r.warnings.front()));
      } else if (r.ok()) {
        lines.push_back(f + ": ok (" + std::to_string(c.trace.size()) +
                        " packets)");
      } else {
        ++failing;
        lines.push_back(f + ": MISMATCH " + r.mismatches.front());
      }
    } catch (const SpecError& e) {
      ++failing;
      lines.push_back(f + ": MISMATCH " + e.what());
    }
  }
  if (files.empty()) {
    lines.push_back("(no .case files found)");
  }
  return failing;
}

}  // namespace netqre::fuzz
