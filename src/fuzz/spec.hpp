// Serializable NetQRE program specs for the differential fuzzer.
//
// Random programs must survive three round trips: generation → compilation
// (QueryBuilder), failure → shrinking (structural tree edits), and corpus
// storage → replay.  A tiny generic s-expression tree covers all three: every
// node is a tag plus scalar args plus child nodes, printed as
//
//     (agg sum 0 2 (comp (filter (pand (param srcip 0 0) (param dstip 1 0)))
//                        (foldf sum len)))
//
// and compiled by a recursive walk that targets the same QueryBuilder API the
// hand-written queries use — so a fuzz spec exercises exactly the compile
// pipeline (PSRE → DFA, unambiguity checks, sparse-scope validation) that
// production queries do.
//
// Expression tags: const, match, cond, condelse, bin, split, iter, comp,
//   filter, foldc, foldf, exists, agg.
// Regex tags: ps, any, all, cat, altre, star, plus, opt.
// Predicate tags: atom, param, pand, por, pnot, ptrue.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/builder.hpp"

namespace netqre::fuzz {

// One s-expression node: `(tag args... kids...)`.
struct SNode {
  std::string tag;
  std::vector<std::string> args;
  std::vector<SNode> kids;

  bool operator==(const SNode& o) const = default;
};

// Malformed spec (unknown tag, bad arity, unbound parameter slot, ...).
// Compilation throws this; the fuzz driver treats it as "discard and
// regenerate", the corpus replayer as a hard error.
struct SpecError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// `(tag ...)` → text, single line.
std::string print_spec(const SNode& n);

// Parses one s-expression; throws SpecError on syntax errors or trailing
// garbage.
SNode parse_spec(const std::string& text);

// Compiles a program spec through QueryBuilder.  Throws SpecError when the
// spec is malformed; builder warnings (ambiguous split/iter, eager-scope
// fallback) are reported in the returned query's `warnings` and make the
// case unusable for differential checking (ambiguous programs may
// legitimately diverge between the reference and streaming semantics).
core::CompiledQuery compile_spec(const SNode& prog);

// Total parameter slots a spec binds (max over `agg` nodes of lo + n).
int spec_n_slots(const SNode& prog);

// Number of nodes in the tree (size budget for generation/shrinking).
int spec_size(const SNode& prog);

}  // namespace netqre::fuzz
