#include "fuzz/gen.hpp"

#include <algorithm>
#include <string>

#include "net/reassembly.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre::fuzz {
namespace {

using net::Packet;
using net::Proto;
using net::TcpFlags;

SNode node(std::string tag, std::vector<std::string> args = {},
           std::vector<SNode> kids = {}) {
  return SNode{std::move(tag), std::move(args), std::move(kids)};
}

size_t pick(Rng& rng, size_t n) { return rng() % n; }

template <typename T>
const T& choose(Rng& rng, const std::vector<T>& v) {
  return v[pick(rng, v.size())];
}

std::string num(int64_t v) { return std::to_string(v); }

// --------------------------------------------------------------- predicates

// A per-program pool of literal atoms bounds the DFA alphabet (and with it
// both compile_regex's 2^atoms letter expansion and ref_eval's cost).
struct AtomPool {
  std::vector<SNode> atoms;

  static AtomPool draw(Rng& rng, int max_atoms) {
    AtomPool pool;
    const int n = 2 + static_cast<int>(pick(rng, static_cast<size_t>(
                                                     std::max(1, max_atoms - 1))));
    for (int i = 0; i < n; ++i) pool.atoms.push_back(draw_atom(rng));
    return pool;
  }

  static SNode draw_atom(Rng& rng) {
    switch (pick(rng, 8)) {
      case 0: return node("atom", {"syn", "eq", num(pick(rng, 2))});
      case 1: return node("atom", {"ack", "eq", num(pick(rng, 2))});
      case 2: return node("atom", {"srcip", "eq", num(1 + pick(rng, 3))});
      case 3: return node("atom", {"dstip", "eq", num(1 + pick(rng, 3))});
      case 4:
        return node("atom", {"srcport", choose(rng, std::vector<std::string>{
                                            "eq", "lt", "ge"}),
                             num(10 * (1 + pick(rng, 3)))});
      case 5:
        return node("atom", {"len", choose(rng, std::vector<std::string>{
                                        "eq", "lt", "ge", "gt", "le"}),
                             num(std::vector<int64_t>{40, 700, 1500}[pick(
                                 rng, 3)])});
      case 6: return node("atom", {"seq", "eq", num(pick(rng, 5))});
      default: return node("atom", {"proto", "eq", num(rng() % 2 ? 6 : 17)});
    }
  }

  SNode pred(Rng& rng, int depth) const {
    if (depth <= 0 || pick(rng, 3) == 0) {
      SNode a = choose(rng, atoms);
      return pick(rng, 4) == 0 ? node("pnot", {}, {std::move(a)})
                               : a;
    }
    switch (pick(rng, 4)) {
      case 0:
        return node("pand", {}, {pred(rng, depth - 1), pred(rng, depth - 1)});
      case 1:
        return node("por", {}, {pred(rng, depth - 1), pred(rng, depth - 1)});
      case 2: return node("pnot", {}, {pred(rng, depth - 1)});
      default: return choose(rng, atoms);
    }
  }
};

// ------------------------------------------------------------------ regexes

// Free-form regex for cond/condelse/match (no unambiguity requirement).
SNode random_re(Rng& rng, const AtomPool& pool, int depth) {
  if (depth <= 0) {
    switch (pick(rng, 3)) {
      case 0: return node("ps", {}, {pool.pred(rng, 1)});
      case 1: return node("any");
      default: return node("all");
    }
  }
  switch (pick(rng, 8)) {
    case 0:  // .* p (suffix anchor — the paper's most common shape)
      return node("cat", {}, {node("all"), node("ps", {}, {pool.pred(rng, 1)})});
    case 1:  // .* p .*
      return node("cat", {}, {node("all"), node("ps", {}, {pool.pred(rng, 1)}),
                              node("all")});
    case 2:
      return node("cat", {},
                  {random_re(rng, pool, depth - 1),
                   random_re(rng, pool, depth - 1)});
    case 3:
      return node("altre", {},
                  {random_re(rng, pool, depth - 1),
                   random_re(rng, pool, depth - 1)});
    case 4: return node("star", {}, {node("ps", {}, {pool.pred(rng, 1)})});
    case 5: return node("plus", {}, {node("ps", {}, {pool.pred(rng, 1)})});
    case 6: return node("opt", {}, {random_re(rng, pool, depth - 1)});
    default: return node("ps", {}, {pool.pred(rng, 1)});
  }
}

// ------------------------------------------------------------- expressions

// Leaf expressions whose domain is Σ* (safe under cond/iter/split bodies).
SNode leaf_expr(Rng& rng) {
  switch (pick(rng, 5)) {
    case 0: return node("const", {num(static_cast<int64_t>(pick(rng, 7)) - 2)});
    case 1: return node("foldc", {"sum", num(1 + pick(rng, 3))});
    case 2:
      return node("foldf",
                  {"sum", choose(rng, std::vector<std::string>{"len", "seq",
                                                               "srcport"})});
    case 3: return node("foldc", {choose(rng, std::vector<std::string>{
                                      "max", "min", "avg"}),
                                  num(1 + pick(rng, 3))});
    default:
      return node("foldf", {choose(rng, std::vector<std::string>{"max", "avg"}),
                            "len"});
  }
}

std::string random_agg(Rng& rng) {
  return choose(rng, std::vector<std::string>{"sum", "sum", "max", "min",
                                              "avg"});
}

// Segment expression templates for iter/split — shapes whose domain DFAs
// have a decent chance of passing the unambiguity checks (ambiguous draws
// are discarded by next_program()).
SNode segment_expr(Rng& rng, const AtomPool& pool) {
  const SNode p = pool.pred(rng, 1);
  const SNode q = pool.pred(rng, 1);
  SNode re;
  switch (pick(rng, 4)) {
    case 0:  // single packet
      re = node("ps", {}, {p});
      break;
    case 1:  // fixed pair
      re = node("cat", {}, {node("ps", {}, {p}), node("ps", {}, {q})});
      break;
    case 2:  // run of p followed by run of ¬p  (syn-runs shape)
      re = node("cat", {},
                {node("plus", {}, {node("ps", {}, {p})}),
                 node("plus", {}, {node("ps", {}, {node("pnot", {}, {p})})})});
      break;
    default:  // p then optional q
      re = node("cat", {}, {node("ps", {}, {p}),
                            node("opt", {}, {node("ps", {}, {q})})});
      break;
  }
  return node("cond", {}, {std::move(re), leaf_expr(rng)});
}

SNode closed_expr(Rng& rng, const AtomPool& pool, int depth) {
  if (depth <= 0) return leaf_expr(rng);
  switch (pick(rng, 10)) {
    case 0: return leaf_expr(rng);
    case 1:
      return node("cond", {}, {random_re(rng, pool, depth - 1),
                               closed_expr(rng, pool, depth - 1)});
    case 2:
      return node("condelse", {},
                  {random_re(rng, pool, depth - 1),
                   closed_expr(rng, pool, depth - 1),
                   closed_expr(rng, pool, depth - 1)});
    case 3: {
      const auto op = choose(
          rng, std::vector<std::string>{"add", "add", "sub", "mul", "gt",
                                        "le", "eq", "div"});
      return node("bin", {op},
                  {closed_expr(rng, pool, depth - 1),
                   closed_expr(rng, pool, depth - 1)});
    }
    case 4:  // filter >> body (the §3.6 pipeline)
      return node("comp", {},
                  {node("filter", {}, {pool.pred(rng, 2)}),
                   closed_expr(rng, pool, depth - 1)});
    case 5: return node("iter", {random_agg(rng)}, {segment_expr(rng, pool)});
    case 6: {
      // split with an anchored right side (split-last shape).
      SNode left = node("cond", {}, {node("all"), node("const", {"0"})});
      const SNode p = pool.pred(rng, 1);
      SNode tail = node(
          "cat", {},
          {node("ps", {}, {p}),
           node("star", {}, {node("ps", {}, {node("pnot", {}, {p})})})});
      return node("split", {"sum"},
                  {std::move(left),
                   node("cond", {}, {std::move(tail), leaf_expr(rng)})});
    }
    case 7:
      return node("split", {random_agg(rng)},
                  {segment_expr(rng, pool), segment_expr(rng, pool)});
    case 8: return node("match", {}, {random_re(rng, pool, depth - 1)});
    default: return node("exists", {}, {pool.pred(rng, 2)});
  }
}

// ------------------------------------------------------- scope (parameter)

// Fields usable as scope keys (numeric, collision-friendly universe).
const std::vector<std::string>& key_fields() {
  static const std::vector<std::string> f = {"srcip", "dstip",  "srcport",
                                             "dstport", "seq", "ackno",
                                             "len"};
  return f;
}

SNode param_atom(Rng& rng, const std::string& field, int slot) {
  const int64_t offset =
      pick(rng, 4) == 0 ? (pick(rng, 2) == 0 ? 1 : -1) : 0;
  return node("param", {field, num(slot), num(offset)});
}

// Per-key counter (S1 / heavy-hitter family):
//   agg sum {x[,y]} . filter(x[, y][, lit]) >> body   with body(ε) ∈ {0}.
SNode scope_counter(Rng& rng, const AtomPool& pool) {
  const int n = 1 + static_cast<int>(pick(rng, 2));
  std::vector<SNode> conj;
  std::vector<std::string> fields;
  for (int i = 0; i < n; ++i) {
    std::string f;
    do {
      f = choose(rng, key_fields());
    } while (std::find(fields.begin(), fields.end(), f) != fields.end());
    fields.push_back(f);
    conj.push_back(param_atom(rng, f, i));
  }
  if (pick(rng, 3) == 0) conj.push_back(choose(rng, pool.atoms));
  SNode pred = conj.size() == 1 ? std::move(conj[0])
                                : node("pand", {}, std::move(conj));
  SNode body;
  switch (pick(rng, 4)) {
    case 0: body = node("foldc", {"sum", num(1 + pick(rng, 3))}); break;
    case 1: body = node("foldf", {"sum", "len"}); break;
    case 2: body = node("foldf", {"sum", "seq"}); break;
    default:  // iterated per-packet count: Σ over segments of the body
      body = node("iter", {"sum"},
                  {node("cond", {},
                        {node("ps", {}, {pool.pred(rng, 1)}),
                         node("const", {"1"})})});
      break;
  }
  return node("agg", {"sum", "0", num(n)},
              {node("comp", {}, {node("filter", {}, {std::move(pred)}),
                                 std::move(body)})});
}

// Exists-style distinct count (S2 flat / dup-seq family):
//   agg sum {x} . (.* [x-pred] .* [again .*]) ? c [: 0]
SNode scope_exists(Rng& rng, const AtomPool& pool) {
  const std::string field = choose(rng, key_fields());
  SNode a = param_atom(rng, field, 0);
  SNode p = pick(rng, 3) == 0
                ? node("pand", {}, {a, choose(rng, pool.atoms)})
                : a;
  SNode re;
  if (pick(rng, 4) == 0) {
    // Key seen at least twice (dup-seq shape; same atom both times).
    re = node("cat", {},
              {node("all"), node("ps", {}, {p}), node("all"),
               node("ps", {}, {p}), node("all")});
  } else {
    re = node("cat", {}, {node("all"), node("ps", {}, {p}), node("all")});
  }
  const std::string c = num(1 + pick(rng, 3));
  SNode inner = pick(rng, 2) == 0
                    ? node("condelse", {},
                           {std::move(re), node("const", {c}),
                            node("const", {"0"})})
                    : node("cond", {}, {std::move(re), node("const", {c})});
  return node("agg", {"sum", "0", "1"}, {std::move(inner)});
}

// Nested superspreader shape: agg A {x} . agg sum {y} . body, where body is
// an exists/condelse distinct test or a filter >> fold counter (the latter
// exercises the specializer's plan-within-plan key composition).
SNode scope_nested(Rng& rng) {
  std::string f0 = choose(rng, key_fields());
  std::string f1;
  do {
    f1 = choose(rng, key_fields());
  } while (f1 == f0);
  SNode p = node("pand", {}, {param_atom(rng, f0, 0), param_atom(rng, f1, 1)});
  SNode inner;
  switch (pick(rng, 4)) {
    case 0: inner = node("exists", {}, {std::move(p)}); break;
    case 1:
      inner = node("condelse", {},
                   {node("cat", {},
                         {node("all"), node("ps", {}, {std::move(p)}),
                          node("all")}),
                    node("const", {"1"}), node("const", {"0"})});
      break;
    default:
      inner = node("comp", {},
                   {node("filter", {}, {std::move(p)}),
                    pick(rng, 2) == 0
                        ? node("foldc", {"sum", num(1 + pick(rng, 3))})
                        : node("foldf", {"sum", "len"})});
      break;
  }
  const auto outer =
      choose(rng, std::vector<std::string>{"max", "sum", "sum", "min"});
  return node("agg", {outer, "0", "1"},
              {node("agg", {"sum", "1", "1"}, {std::move(inner)})});
}

// Per-key classifier (dns/keyword family): agg sum {x} . filter(x[, lit])
// >> iter(single-packet cond chain) — the shape the specializer compiles to
// a product step machine over the classifier branches.
SNode scope_classifier(Rng& rng, const AtomPool& pool) {
  const std::string field = choose(rng, key_fields());
  SNode pred = param_atom(rng, field, 0);
  if (pick(rng, 3) == 0) {
    pred = node("pand", {}, {std::move(pred), choose(rng, pool.atoms)});
  }
  // Chain of 1-2 single-packet branches with constant values; the last
  // branch draws cond-vs-condelse so both total and partial classifiers
  // (undef on unmatched packets) are exercised.
  SNode last =
      pick(rng, 2) == 0
          ? node("cond", {}, {node("ps", {}, {pool.pred(rng, 1)}),
                              node("const", {num(1 + pick(rng, 3))})})
          : node("condelse", {},
                 {node("ps", {}, {pool.pred(rng, 1)}),
                  node("const", {num(1 + pick(rng, 3))}),
                  node("const", {num(static_cast<int64_t>(pick(rng, 2)))})});
  SNode chain =
      pick(rng, 2) == 0
          ? std::move(last)
          : node("condelse", {},
                 {node("ps", {}, {pool.pred(rng, 1)}),
                  node("const", {num(1 + pick(rng, 3))}), std::move(last)});
  return node("agg", {"sum", "0", "1"},
              {node("comp", {}, {node("filter", {}, {std::move(pred)}),
                                 node("iter", {"sum"}, {std::move(chain)})})});
}

}  // namespace

SNode random_program(Rng& rng, const GenConfig& cfg) {
  const AtomPool pool = AtomPool::draw(rng, cfg.max_atoms);
  const size_t r = pick(rng, 12);
  if (r < 5) return closed_expr(rng, pool, cfg.max_depth);
  if (r < 7) return scope_counter(rng, pool);
  if (r < 9) return scope_exists(rng, pool);
  if (r < 11) return scope_nested(rng);
  return scope_classifier(rng, pool);
}

SNode next_program(Rng& rng, const GenConfig& cfg, uint64_t& rejected) {
  for (int t = 0; t < cfg.compile_tries; ++t) {
    SNode prog = random_program(rng, cfg);
    try {
      core::CompiledQuery q = compile_spec(prog);
      if (!q.warnings.empty()) {
        ++rejected;  // ambiguous / eager fallback: outside the oracle domain
        continue;
      }
      return prog;
    } catch (const SpecError&) {
      ++rejected;  // e.g. regex exceeded the atom budget
    }
  }
  throw SpecError("generator failed to produce a compilable program");
}

// ------------------------------------------------------------------ traces

namespace {

Packet small_packet(Rng& rng, double ts, int universe) {
  Packet p;
  p.ts = ts;
  p.src_ip = 1 + static_cast<uint32_t>(pick(rng, static_cast<size_t>(universe)));
  p.dst_ip = 1 + static_cast<uint32_t>(pick(rng, static_cast<size_t>(universe)));
  p.src_port = static_cast<uint16_t>(10 * (1 + pick(rng, 3)));
  p.dst_port = static_cast<uint16_t>(10 * (1 + pick(rng, 3)));
  p.proto = pick(rng, 5) == 0 ? Proto::Udp : Proto::Tcp;
  switch (pick(rng, 5)) {
    case 0: p.tcp_flags = TcpFlags::kSyn; break;
    case 1: p.tcp_flags = TcpFlags::kSyn | TcpFlags::kAck; break;
    case 2: p.tcp_flags = TcpFlags::kFin | TcpFlags::kAck; break;
    case 3: p.tcp_flags = TcpFlags::kRst; break;
    default: p.tcp_flags = TcpFlags::kAck; break;
  }
  p.seq = static_cast<uint32_t>(pick(rng, 5));
  p.ack_no = static_cast<uint32_t>(pick(rng, 5));
  p.wire_len = std::vector<uint32_t>{40, 41, 700, 1500}[pick(rng, 4)];
  return p;
}

std::vector<Packet> uniform_trace(Rng& rng, size_t max_len, int universe) {
  std::vector<Packet> out;
  const size_t n = pick(rng, max_len + 1);
  double ts = 1000.0;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(small_packet(rng, ts, universe));
    if (pick(rng, 3) != 0) ts += 0.5;  // occasional equal timestamps
  }
  return out;
}

// In-order TCP session, mildly shuffled, then restored by the reorderer —
// the stream the engine sees is the reassembled one (the §2 preprocessing
// pipeline), which is what all five evaluation paths must agree on.
std::vector<Packet> reordered_trace(Rng& rng, size_t max_len) {
  std::vector<Packet> session;
  uint32_t seq = 1;
  double ts = 1000.0;
  const size_t n = 2 + pick(rng, std::max<size_t>(1, max_len - 2));
  for (size_t i = 0; i < n; ++i) {
    Packet p;
    p.ts = ts;
    ts += 0.1;
    p.src_ip = 1;
    p.dst_ip = 2;
    p.src_port = 10;
    p.dst_port = 20;
    p.proto = Proto::Tcp;
    p.tcp_flags = i == 0 ? TcpFlags::kSyn : TcpFlags::kAck;
    p.seq = seq;
    p.ack_no = 0;
    const size_t paylen = i == 0 ? 0 : 1 + pick(rng, 3);
    p.payload.assign(paylen, 'x');
    p.wire_len = static_cast<uint32_t>(40 + paylen);
    seq += static_cast<uint32_t>(paylen + (i == 0 ? 1 : 0));
    session.push_back(std::move(p));
  }
  // Swap a few adjacent pairs, duplicate one segment (retransmission).
  for (size_t i = 1; i + 1 < session.size(); i += 2) {
    if (pick(rng, 2) == 0) std::swap(session[i], session[i + 1]);
  }
  if (!session.empty() && pick(rng, 2) == 0) {
    session.push_back(session[pick(rng, session.size())]);
  }
  net::TcpReorderer reorder;
  std::vector<Packet> out;
  for (const auto& p : session) reorder.push(p, out);
  reorder.flush(out);
  if (out.size() > max_len) out.resize(max_len);
  return out;
}

std::vector<Packet> trafficgen_slice(Rng& rng, size_t max_len) {
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = max_len;
  cfg.n_flows = 3;
  cfg.seed = rng();
  return trafficgen::backbone_trace(cfg);
}

}  // namespace

std::vector<Packet> random_trace(Rng& rng, const GenConfig& cfg) {
  const size_t max_len = static_cast<size_t>(cfg.max_stream);
  const size_t r = pick(rng, 20);
  if (r < 1) return {};  // empty stream
  if (r < 11) return uniform_trace(rng, max_len, 3);
  if (r < 14) return uniform_trace(rng, max_len, 1);  // maximal collisions
  if (r < 17) {  // duplicated segments
    std::vector<Packet> base = uniform_trace(rng, max_len / 2 + 1, 2);
    std::vector<Packet> out = base;
    while (!base.empty() && out.size() < max_len && pick(rng, 3) != 0) {
      const size_t lo = pick(rng, base.size());
      const size_t hi = std::min(base.size(), lo + 1 + pick(rng, 3));
      out.insert(out.end(), base.begin() + static_cast<long>(lo),
                 base.begin() + static_cast<long>(hi));
    }
    if (out.size() > max_len) out.resize(max_len);
    return out;
  }
  if (r < 19) return reordered_trace(rng, max_len);
  return trafficgen_slice(rng, max_len);
}

}  // namespace netqre::fuzz
