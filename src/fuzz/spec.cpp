#include "fuzz/spec.hpp"

#include <algorithm>
#include <sstream>

namespace netqre::fuzz {

using core::AggOp;
using core::BinKind;
using core::CmpOp;
using core::Formula;
using core::QueryBuilder;
using core::Re;
using core::Type;
using core::Value;

// ------------------------------------------------------------- print/parse

std::string print_spec(const SNode& n) {
  std::ostringstream out;
  out << '(' << n.tag;
  for (const auto& a : n.args) out << ' ' << a;
  for (const auto& k : n.kids) out << ' ' << print_spec(k);
  out << ')';
  return out.str();
}

namespace {

struct Parser {
  const std::string& text;
  size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw SpecError("spec parse error at offset " + std::to_string(pos) +
                    ": " + what);
  }

  std::string token() {
    const size_t start = pos;
    while (pos < text.size() && text[pos] != '(' && text[pos] != ')' &&
           text[pos] != ' ' && text[pos] != '\t' && text[pos] != '\n' &&
           text[pos] != '\r') {
      ++pos;
    }
    if (pos == start) fail("expected token");
    return text.substr(start, pos - start);
  }

  SNode node() {
    skip_ws();
    if (pos >= text.size() || text[pos] != '(') fail("expected '('");
    ++pos;
    skip_ws();
    SNode n;
    n.tag = token();
    for (;;) {
      skip_ws();
      if (pos >= text.size()) fail("unterminated '('");
      if (text[pos] == ')') {
        ++pos;
        return n;
      }
      if (text[pos] == '(') {
        n.kids.push_back(node());
      } else {
        if (!n.kids.empty()) fail("scalar arg after child node");
        n.args.push_back(token());
      }
    }
  }
};

int64_t to_int(const std::string& s, const char* what) {
  try {
    size_t used = 0;
    const int64_t v = std::stoll(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw SpecError(std::string("bad integer for ") + what + ": '" + s + "'");
  }
}

void need(const SNode& n, size_t args, size_t kids) {
  if (n.args.size() != args || n.kids.size() != kids) {
    throw SpecError("(" + n.tag + "): expected " + std::to_string(args) +
                    " args + " + std::to_string(kids) + " kids, got " +
                    std::to_string(n.args.size()) + "+" +
                    std::to_string(n.kids.size()));
  }
}

AggOp to_agg(const std::string& s) {
  if (s == "sum") return AggOp::Sum;
  if (s == "avg") return AggOp::Avg;
  if (s == "max") return AggOp::Max;
  if (s == "min") return AggOp::Min;
  throw SpecError("unknown aggregation '" + s + "'");
}

CmpOp to_cmp(const std::string& s) {
  if (s == "eq") return CmpOp::Eq;
  if (s == "lt") return CmpOp::Lt;
  if (s == "le") return CmpOp::Le;
  if (s == "gt") return CmpOp::Gt;
  if (s == "ge") return CmpOp::Ge;
  throw SpecError("unknown comparison '" + s + "'");
}

BinKind to_bin(const std::string& s) {
  if (s == "add") return BinKind::Add;
  if (s == "sub") return BinKind::Sub;
  if (s == "mul") return BinKind::Mul;
  if (s == "div") return BinKind::Div;
  if (s == "gt") return BinKind::Gt;
  if (s == "ge") return BinKind::Ge;
  if (s == "lt") return BinKind::Lt;
  if (s == "le") return BinKind::Le;
  if (s == "eq") return BinKind::Eq;
  if (s == "ne") return BinKind::Ne;
  if (s == "and") return BinKind::And;
  if (s == "or") return BinKind::Or;
  throw SpecError("unknown binary op '" + s + "'");
}

bool is_bool_field(const std::string& f) {
  return f == "syn" || f == "ack" || f == "fin" || f == "rst" || f == "psh";
}

// ------------------------------------------------------------- compilation

struct Compiler {
  QueryBuilder& b;
  int n_slots;

  Formula pred(const SNode& n) {
    if (n.tag == "atom") {
      need(n, 3, 0);
      const int64_t lit = to_int(n.args[2], "atom literal");
      Value v = is_bool_field(n.args[0]) ? Value::boolean(lit != 0)
                                         : Value::integer(lit);
      return b.atom_cmp(n.args[0], to_cmp(n.args[1]), std::move(v));
    }
    if (n.tag == "param") {
      need(n, 3, 0);
      const int slot = static_cast<int>(to_int(n.args[1], "param slot"));
      if (slot < 0 || slot >= n_slots) {
        throw SpecError("param slot " + n.args[1] + " out of range");
      }
      return b.atom_param(n.args[0], slot, to_int(n.args[2], "param offset"));
    }
    if (n.tag == "pand" || n.tag == "por") {
      if (n.kids.size() < 2) throw SpecError("(" + n.tag + "): need >=2 kids");
      Formula f = pred(n.kids[0]);
      for (size_t i = 1; i < n.kids.size(); ++i) {
        f = n.tag == "pand" ? Formula::conj(std::move(f), pred(n.kids[i]))
                            : Formula::disj(std::move(f), pred(n.kids[i]));
      }
      return f;
    }
    if (n.tag == "pnot") {
      need(n, 0, 1);
      return Formula::negate(pred(n.kids[0]));
    }
    if (n.tag == "ptrue") {
      need(n, 0, 0);
      return Formula::make_true();
    }
    throw SpecError("unknown predicate tag '" + n.tag + "'");
  }

  Re re(const SNode& n) {
    if (n.tag == "ps") {
      need(n, 0, 1);
      return Re::pred_of(pred(n.kids[0]));
    }
    if (n.tag == "any") {
      need(n, 0, 0);
      return Re::any();
    }
    if (n.tag == "all") {
      need(n, 0, 0);
      return Re::all();
    }
    if (n.tag == "cat" || n.tag == "altre") {
      if (n.kids.size() < 2) throw SpecError("(" + n.tag + "): need >=2 kids");
      Re r = re(n.kids[0]);
      for (size_t i = 1; i < n.kids.size(); ++i) {
        r = n.tag == "cat" ? Re::concat(std::move(r), re(n.kids[i]))
                           : Re::alt(std::move(r), re(n.kids[i]));
      }
      return r;
    }
    if (n.tag == "star") {
      need(n, 0, 1);
      return Re::star(re(n.kids[0]));
    }
    if (n.tag == "plus") {
      need(n, 0, 1);
      return Re::plus(re(n.kids[0]));
    }
    if (n.tag == "opt") {
      need(n, 0, 1);
      return Re::opt(re(n.kids[0]));
    }
    throw SpecError("unknown regex tag '" + n.tag + "'");
  }

  QueryBuilder::Expr expr(const SNode& n) {
    if (n.tag == "const") {
      need(n, 1, 0);
      return b.constant(Value::integer(to_int(n.args[0], "const")));
    }
    if (n.tag == "match") {
      need(n, 0, 1);
      return b.match(re(n.kids[0]));
    }
    if (n.tag == "cond") {
      need(n, 0, 2);
      return b.cond(re(n.kids[0]), expr(n.kids[1]));
    }
    if (n.tag == "condelse") {
      need(n, 0, 3);
      return b.cond_else(re(n.kids[0]), expr(n.kids[1]), expr(n.kids[2]));
    }
    if (n.tag == "bin") {
      need(n, 1, 2);
      return b.bin(to_bin(n.args[0]), expr(n.kids[0]), expr(n.kids[1]));
    }
    if (n.tag == "split") {
      need(n, 1, 2);
      return b.split(expr(n.kids[0]), expr(n.kids[1]), to_agg(n.args[0]));
    }
    if (n.tag == "iter") {
      need(n, 1, 1);
      return b.iter(expr(n.kids[0]), to_agg(n.args[0]));
    }
    if (n.tag == "comp") {
      need(n, 0, 2);
      return b.comp(expr(n.kids[0]), expr(n.kids[1]));
    }
    if (n.tag == "filter") {
      need(n, 0, 1);
      return b.filter(pred(n.kids[0]));
    }
    if (n.tag == "foldc") {
      need(n, 2, 0);
      return b.fold_const(to_agg(n.args[0]),
                          Value::integer(to_int(n.args[1], "fold const")));
    }
    if (n.tag == "foldf") {
      need(n, 2, 0);
      return b.fold_field(to_agg(n.args[0]), n.args[1]);
    }
    if (n.tag == "exists") {
      need(n, 0, 1);
      return b.exists(pred(n.kids[0]));
    }
    if (n.tag == "agg") {
      need(n, 3, 1);
      const int lo = static_cast<int>(to_int(n.args[1], "agg slot_lo"));
      const int cnt = static_cast<int>(to_int(n.args[2], "agg n_slots"));
      if (lo < 0 || cnt < 1 || cnt > 4 || lo + cnt > n_slots) {
        throw SpecError("agg: bad slot range [" + std::to_string(lo) + ", " +
                        std::to_string(lo + cnt) + ")");
      }
      std::vector<int> slots;
      for (int i = 0; i < cnt; ++i) slots.push_back(lo + i);
      return b.aggregate(to_agg(n.args[0]), slots, expr(n.kids[0]));
    }
    throw SpecError("unknown expression tag '" + n.tag + "'");
  }
};

// Finds the field name a slot's first parameterized atom uses, for typing.
void slot_fields(const SNode& n, std::vector<std::string>& by_slot) {
  if (n.tag == "param" && n.args.size() == 3) {
    try {
      const auto slot = static_cast<size_t>(to_int(n.args[1], "slot"));
      if (slot < by_slot.size() && by_slot[slot].empty()) {
        by_slot[slot] = n.args[0];
      }
    } catch (const SpecError&) {
      // Malformed slot number; compile_spec reports it properly later.
    }
  }
  for (const auto& k : n.kids) slot_fields(k, by_slot);
}

}  // namespace

SNode parse_spec(const std::string& text) {
  Parser p{text};
  SNode n = p.node();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing garbage after spec");
  return n;
}

int spec_n_slots(const SNode& n) {
  int slots = 0;
  if (n.tag == "agg" && n.args.size() == 3) {
    try {
      slots = static_cast<int>(to_int(n.args[1], "lo") +
                               to_int(n.args[2], "n"));
    } catch (const SpecError&) {
      slots = 0;
    }
  }
  for (const auto& k : n.kids) slots = std::max(slots, spec_n_slots(k));
  return slots;
}

int spec_size(const SNode& n) {
  int sz = 1;
  for (const auto& k : n.kids) sz += spec_size(k);
  return sz;
}

core::CompiledQuery compile_spec(const SNode& prog) {
  QueryBuilder b;
  const int n_slots = spec_n_slots(prog);
  std::vector<std::string> fields(static_cast<size_t>(n_slots));
  slot_fields(prog, fields);
  std::vector<std::string> names;
  for (int i = 0; i < n_slots; ++i) {
    Type t = Type::Int;
    if (!fields[static_cast<size_t>(i)].empty()) {
      if (auto ref = core::resolve_field(fields[static_cast<size_t>(i)])) {
        t = core::field_type(*ref);
      }
    }
    names.push_back("p" + std::to_string(i));
    b.new_param(names.back(), t);
  }
  Compiler c{b, n_slots};
  try {
    return b.finish(c.expr(prog), std::move(names));
  } catch (const SpecError&) {
    throw;
  } catch (const std::exception& e) {
    // Builder-level rejections (unknown field, invalid param atom, regex
    // too large, non-contiguous slots) surface as SpecError too.
    throw SpecError(e.what());
  }
}

}  // namespace netqre::fuzz
