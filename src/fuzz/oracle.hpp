// Differential oracle: one (program, trace) pair through six independent
// evaluation paths, every disagreement reported.
//
// Paths and the claims they witness (DESIGN.md "Testing & oracles"):
//   1. ref_eval            — the §3 declarative store-everything semantics.
//   2. streaming Engine    — §5 guarded-state updates (Algorithms 1-4).
//   3. SpecializedMonitor  — the codegen back-end's plan executed in
//                            process (same semantics as the emitted C++).
//   4. ParallelEngine      — §6 hash-partitioned shards at 1/2/4 workers;
//                            the 1-shard run ingests via feed(PacketBatch&&).
//   5. batched Engine      — on_batch chunked ingestion, which must leave
//                            state bit-identical to per-packet on_packet.
//   6. compiled-tier Engine — Engine(q, EngineTier::Compiled): the full
//                            engine surface (eval/eval_at/enumerate) riding
//                            the SpecializedMonitor, as tier auto-selection
//                            runs it in production.
//
// For parameter scopes, per-leaf checks sharpen the top-level comparison:
// every enumerated valuation's value must equal the *reference* evaluation
// of the scope body under that valuation, eval_at must agree with
// enumerate, and a fresh (never-observed) key must take the default
// branch's reference value.
//
// Multi-shard parallel checks require partition safety (all packets that
// can affect one top-level key land in one shard); the oracle derives that
// from the sparse-scope proof: non-eager scope, all parameters
// skip-validated, no ungated inner updates, and a single candidate atom
// for the partitioning parameter.  parallel(1) is checked unconditionally.
#pragma once

#include <string>
#include <vector>

#include "fuzz/spec.hpp"
#include "net/packet.hpp"

namespace netqre::fuzz {

struct OracleOptions {
  bool check_parallel = true;
  bool check_codegen = true;
  std::vector<int> extra_shards = {2, 4};  // beyond the unconditional 1
};

struct OracleReport {
  // Compiled without warnings; an ambiguous program (split/iter warning,
  // eager-scope fallback) is outside the differential domain and gets no
  // checks (the reference may legitimately pick a different decomposition).
  bool usable = false;
  std::vector<std::string> warnings;
  // "path: expected X got Y" lines; empty means all paths agree.
  std::vector<std::string> mismatches;
  bool codegen_checked = false;    // analyze_spec produced a plan
  bool compiled_tier_checked = false;  // forced-compiled Engine ran (path 6)
  bool parallel_sharded = false;   // 2/4-shard runs were partition-safe

  [[nodiscard]] bool ok() const { return mismatches.empty(); }
};

// Compiles and cross-checks; throws SpecError when the spec is malformed.
OracleReport run_oracle(const SNode& prog,
                        const std::vector<net::Packet>& trace,
                        const OracleOptions& opt = {});

}  // namespace netqre::fuzz
