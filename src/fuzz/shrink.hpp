// Greedy minimization of failing fuzz cases.
//
// Alternates two reduction passes until a fixpoint (or the attempt budget
// runs out):
//
//   * packet deltas — remove chunks of the trace, halving chunk sizes down
//     to single packets (ddmin-style);
//   * spec deltas  — for every tree node, try hoisting one of its children
//     over it, or replacing an expression subtree with `(const 0)`.
//
// Every candidate is re-validated by the caller's `still_fails` predicate
// (typically: re-run the differential oracle and keep the reduction only if
// the mismatch persists).  Candidates that no longer compile are rejected
// by the predicate, so spec edits can be blissfully type-unaware.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fuzz/spec.hpp"
#include "net/packet.hpp"

namespace netqre::fuzz {

struct ShrinkResult {
  SNode prog;
  std::vector<net::Packet> trace;
  uint64_t steps = 0;     // accepted reductions
  uint64_t attempts = 0;  // candidates tried
};

using FailPredicate = std::function<bool(const SNode&,
                                         const std::vector<net::Packet>&)>;

// Requires still_fails(prog, trace) to hold on entry; returns a (usually
// much smaller) case on which it still holds.
ShrinkResult shrink_case(SNode prog, std::vector<net::Packet> trace,
                         const FailPredicate& still_fails,
                         uint64_t max_attempts = 600);

}  // namespace netqre::fuzz
