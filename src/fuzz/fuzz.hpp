// Fuzz campaign driver: generate → cross-check → shrink → pin.
//
// Each iteration draws one unambiguous random program and one adversarial
// trace, runs the differential oracle, and on any disagreement greedily
// shrinks the case to a minimal repro, saved as a replayable corpus file.
// Everything is keyed off a single seed: `run_fuzz({.seed = s})` is fully
// deterministic, which is what lets CI pin a fixed-seed smoke run while the
// nightly job explores with a clock-derived seed.
//
// Campaign counters are also published to the obs registry
// (netqre_fuzz_iterations_total, _rejected_total, _mismatches_total,
// _shrink_steps_total) so correctness runs show up in the same telemetry
// pipeline as the performance benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/gen.hpp"
#include "fuzz/oracle.hpp"

namespace netqre::fuzz {

struct FuzzConfig {
  uint64_t seed = 1;
  uint64_t iterations = 500;
  std::string corpus_dir;    // where minimized repros go; empty = don't save
  double max_seconds = 0;    // wall-clock budget; 0 = unlimited
  size_t max_repros = 10;    // stop saving (not checking) after this many
  GenConfig gen;
  OracleOptions oracle;
};

struct FuzzSummary {
  uint64_t iterations = 0;  // oracle runs completed
  uint64_t rejected = 0;    // ambiguous/uncompilable draws discarded
  uint64_t mismatches = 0;  // iterations with >= 1 path disagreement
  uint64_t shrink_steps = 0;
  uint64_t shrink_attempts = 0;
  uint64_t checks_parallel_sharded = 0;  // iterations with 2/4-shard runs
  uint64_t checks_codegen = 0;           // iterations with a codegen plan
  uint64_t scope_programs = 0;           // parameterized draws
  double elapsed_seconds = 0;
  bool time_boxed = false;  // stopped by max_seconds
  std::vector<std::string> repro_files;
  std::vector<std::string> failures;  // first mismatch line per failing case
};

FuzzSummary run_fuzz(const FuzzConfig& cfg);

// Replays corpus files (each `path` a .case file or a directory of them)
// through the oracle.  Appends one "<file>: ok|MISMATCH ..." line per case
// to `lines`; returns the number of failing cases.  Malformed files count
// as failures.
int replay_corpus(const std::vector<std::string>& paths,
                  const OracleOptions& opt, std::vector<std::string>& lines);

}  // namespace netqre::fuzz
