// OpenSketch-style measurement pipeline (Fig. 7 comparison, [40]).
//
// Reimplementation of the sketches OpenSketch's software reference uses for
// the two tasks the paper compares on: heavy hitter (count-min sketch +
// reversible sketch for key recovery) and super spreader (per-source bitmap
// banks with linear-counting estimation).  Default dimensions follow the
// reference code's defaults (3 hash rows, 3072 counters).  The point of the
// comparison is the throughput/memory trade-off: sketches hash multiple
// times per packet into compact state, NetQRE keeps exact per-flow state.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/flow.hpp"

namespace netqre::sketch {

class CountMinSketch {
 public:
  CountMinSketch(int rows = 3, int width = 3072)
      : rows_(rows), width_(width), counters_(rows * width, 0) {}

  void update(uint64_t key, uint64_t inc) {
    for (int r = 0; r < rows_; ++r) {
      counters_[r * width_ + slot(key, r)] += inc;
    }
  }

  [[nodiscard]] uint64_t query(uint64_t key) const {
    uint64_t best = ~uint64_t{0};
    for (int r = 0; r < rows_; ++r) {
      best = std::min(best, counters_[r * width_ + slot(key, r)]);
    }
    return best;
  }

  [[nodiscard]] size_t memory() const {
    return counters_.size() * sizeof(uint64_t) + sizeof(*this);
  }

 private:
  [[nodiscard]] size_t slot(uint64_t key, int row) const {
    return net::mix64(key ^ (0x9e3779b97f4a7c15ull * (row + 1))) % width_;
  }
  int rows_;
  int width_;
  std::vector<uint64_t> counters_;
};

// Simplified reversible sketch (Schweller et al., as used by OpenSketch):
// the key is split into byte groups, each hashed into a per-group table so
// heavy keys can be reconstructed group-by-group.
class ReversibleSketch {
 public:
  static constexpr int kGroups = 4;
  static constexpr int kBuckets = 512;

  void update(uint32_t key, uint64_t inc) {
    for (int g = 0; g < kGroups; ++g) {
      const uint8_t byte = static_cast<uint8_t>(key >> (8 * g));
      tables_[g][bucket(byte, key, g)] += inc;
    }
  }

  [[nodiscard]] uint64_t group_count(int group, uint8_t byte,
                                     uint32_t key) const {
    return tables_[group][bucket(byte, key, group)];
  }

  [[nodiscard]] size_t memory() const {
    return kGroups * kBuckets * sizeof(uint64_t) + sizeof(*this);
  }

 private:
  [[nodiscard]] static size_t bucket(uint8_t byte, uint32_t key, int group) {
    // Mangle with the remaining key bits, mimicking the modular hashing of
    // the reversible sketch.
    return net::mix64((uint64_t{byte} << 32) ^ (key >> 8) ^
                      (0x517cc1b727220a95ull * (group + 1))) %
           kBuckets;
  }
  std::array<std::array<uint64_t, kBuckets>, kGroups> tables_{};
};

// Heavy hitter pipeline: count-min for byte counts + reversible sketch so
// heavy flows can be identified without per-flow state.
class OpenSketchHeavyHitter {
 public:
  void on_packet(const net::Packet& p) {
    const uint64_t key = (uint64_t{p.src_ip} << 32) | p.dst_ip;
    cm_.update(key, p.wire_len);
    rev_.update(p.src_ip, p.wire_len);
    rev_dst_.update(p.dst_ip, p.wire_len);
  }
  [[nodiscard]] uint64_t estimate(uint32_t src, uint32_t dst) const {
    return cm_.query((uint64_t{src} << 32) | dst);
  }
  [[nodiscard]] size_t memory() const {
    return cm_.memory() + rev_.memory() + rev_dst_.memory();
  }

 private:
  CountMinSketch cm_;
  ReversibleSketch rev_;
  ReversibleSketch rev_dst_;
};

// Super spreader pipeline: hashed bitmap banks per source with linear
// counting, plus a count-min over sources for the candidate filter.
class OpenSketchSuperSpreader {
 public:
  OpenSketchSuperSpreader(int banks = 4096, int bits = 64)
      : bits_(bits), bitmaps_(static_cast<size_t>(banks) * bits, false) {}

  void on_packet(const net::Packet& p) {
    cm_.update(p.src_ip, 1);
    const size_t bank = net::mix64(p.src_ip) % (bitmaps_.size() / bits_);
    const size_t bit =
        net::mix64((uint64_t{p.src_ip} << 32) ^ p.dst_ip) % bits_;
    bitmaps_[bank * bits_ + bit] = true;
  }

  // Linear-counting estimate of distinct destinations for `src`.
  [[nodiscard]] double estimate(uint32_t src) const;

  [[nodiscard]] size_t memory() const {
    return bitmaps_.size() / 8 + cm_.memory() + sizeof(*this);
  }

 private:
  int bits_;
  std::vector<bool> bitmaps_;
  CountMinSketch cm_;
};

}  // namespace netqre::sketch
