#include "sketch/sketch.hpp"

#include <cmath>

namespace netqre::sketch {

double OpenSketchSuperSpreader::estimate(uint32_t src) const {
  const size_t bank = net::mix64(src) % (bitmaps_.size() / bits_);
  int zeros = 0;
  for (int b = 0; b < bits_; ++b) {
    if (!bitmaps_[bank * bits_ + b]) ++zeros;
  }
  if (zeros == 0) return static_cast<double>(bits_);
  const double m = static_cast<double>(bits_);
  return m * std::log(m / static_cast<double>(zeros));
}

}  // namespace netqre::sketch
