// Ablation study for the compiler/runtime design choices DESIGN.md §5
// calls out, on the heavy-hitter workload:
//
//   1. guard-trie update strategy: sparse (miss-skip + letter-class
//      equivalence) vs always-eager (§5's general guarded-state update);
//   2. letter-class skip: on vs off (off still uses the sparse walk but
//      materializes every candidate combination and prunes afterwards);
//   3. iter fusion: FoldOp (the §6 incremental-aggregation peephole) vs the
//      generic iter(/./?v, sum) machine.
#include <chrono>
#include <cstdio>

#include "bench/common.hpp"
#include "core/engine.hpp"

namespace {

using namespace netqre;
using core::AggOp;
using core::CompiledQuery;
using core::Engine;
using core::Formula;
using core::QueryBuilder;
using core::Re;
using core::ScopeMode;
using core::Type;
using core::Value;

CompiledQuery hh_query(bool eager, bool fused) {
  QueryBuilder b;
  int x = b.new_param("x", Type::Ip);
  int y = b.new_param("y", Type::Ip);
  auto pred = Formula::conj(b.atom_param("srcip", x),
                            b.atom_param("dstip", y));
  QueryBuilder::Expr counter =
      fused ? b.count_size()
            : b.iter(b.cond(Re::any(), b.last_field("len")), AggOp::Sum);
  auto inner = b.comp(b.filter(std::move(pred)), std::move(counter));
  ScopeMode mode;
  mode.kind = ScopeMode::Kind::Aggregate;
  mode.agg = AggOp::Sum;
  auto scope = std::make_shared<core::ParamScopeOp>(
      0, 2, mode, std::move(inner.op), b.table(), eager);
  CompiledQuery q;
  q.root = std::move(scope);
  q.table = b.table();
  q.n_slots = 2;
  return q;
}

struct Row {
  double mpps;
  int64_t result;
  uint64_t wall_ns;
  uint64_t state_bytes;
};

Row run(const CompiledQuery& q, const std::vector<net::Packet>& trace) {
  Engine eng(q);
  const uint64_t ns = bench::time_ns([&] {
    for (const auto& p : trace) eng.on_packet(p);
  });
  return {static_cast<double>(trace.size()) * 1e3 /
              static_cast<double>(ns),
          eng.eval().as_int(), ns, eng.state_memory()};
}

}  // namespace

int main() {
  // A smaller trace: the eager variant is quadratic in live flows.
  trafficgen::BackboneConfig cfg;
  cfg.n_packets = std::min<uint64_t>(bench::bench_packets(), 40'000);
  cfg.n_flows = 2'000;
  const auto trace = trafficgen::backbone_trace(cfg);

  std::printf("Ablation (heavy hitter, %zu packets)\n\n", trace.size());
  std::printf("%-44s %10s %14s\n", "configuration", "MPPS", "result");

  bench::BenchReporter report("ablation");
  const auto emit = [&](const char* name, const Row& r) {
    report.record({name, "backbone", trace.size(), r.wall_ns, r.state_bytes});
  };

  const Row full = run(hh_query(false, true), trace);
  std::printf("%-44s %10.3f %14lld\n",
              "sparse + letter-class skip + fold fusion", full.mpps,
              static_cast<long long>(full.result));
  emit("sparse+skip+fold", full);

  core::ParamScopeOp::set_skip_optimization(false);
  const Row noskip = run(hh_query(false, true), trace);
  core::ParamScopeOp::set_skip_optimization(true);
  std::printf("%-44s %10.3f %14lld\n", "sparse, no letter-class skip",
              noskip.mpps, static_cast<long long>(noskip.result));
  emit("sparse_no_skip", noskip);

  const Row unfused = run(hh_query(false, false), trace);
  std::printf("%-44s %10.3f %14lld\n", "sparse + skip, generic iter counter",
              unfused.mpps, static_cast<long long>(unfused.result));
  emit("generic_iter", unfused);

  const Row eager = run(hh_query(true, true), trace);
  std::printf("%-44s %10.3f %14lld\n",
              "eager guarded-state update (Algorithm 1)", eager.mpps,
              static_cast<long long>(eager.result));
  emit("eager_update", eager);

  const bool agree = full.result == noskip.result &&
                     full.result == unfused.result &&
                     full.result == eager.result;
  std::printf("\nall configurations agree: %s\n", agree ? "yes" : "NO");
  return agree ? 0 : 1;
}
