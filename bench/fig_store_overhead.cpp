// Result-store overhead: the same heavy-hitter replay with the store's
// sampling cadence off vs on (DESIGN.md "Result store & streaming").
//
// The store samples the engine's result map — an enumerate over every
// guarded key — and folds it into the retention tiers.  Both costs sit on
// the engine thread between batches, so this measures exactly what an edge
// monitor pays for keeping history.  The measurement mirrors the monitor's
// deployment shape: the trace is replayed in a loop for a fixed wall-clock
// budget with the default 1 s sampling cadence, and the metric is packet
// throughput with the store off vs on.  The acceptance bar is <3%
// (CI gates on the same-run off/on ratio).
#include <chrono>
#include <cstdio>
#include <ctime>

#include "bench/common.hpp"
#include "store/series_store.hpp"

namespace {

using namespace netqre;
using Clock = std::chrono::steady_clock;

constexpr auto kMeasureWall = std::chrono::milliseconds(2000);
constexpr auto kCadence = std::chrono::milliseconds(1000);

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         1e-9 * static_cast<double>(ts.tv_nsec);
}

// Replays the trace in a loop for kMeasureWall; with a store, samples the
// result map on the wall-clock cadence exactly like netqre-monitor's
// engine loop.  Returns packets per *CPU* second of the replay thread —
// the sampling work runs on this thread, so its cost is fully attributed,
// while preemption by the container's other tenants is not (the fig8
// busy-time convention; wall-clock here is too noisy for a percent-level
// gate).
double replay_pps(core::Engine& engine, const std::vector<net::Packet>& trace,
                  store::SeriesStore* st,
                  store::SeriesStore::ContextId ctx) {
  uint64_t packets = 0;
  uint64_t t_ns = 1'700'000'000ull * 1'000'000'000ull;
  std::vector<core::ResultSample> results;
  std::vector<store::Sample> round;
  const auto t0 = Clock::now();
  const double cpu0 = thread_cpu_seconds();
  const auto deadline = t0 + kMeasureWall;
  auto next_sample = t0 + kCadence;
  bool done = false;
  while (!done) {
    bench::for_each_batch(trace, [&](std::span<const net::Packet> batch) {
      if (done) return;
      engine.on_batch(batch);
      packets += batch.size();
      const auto now = Clock::now();
      if (st && now >= next_sample) {
        next_sample = now + kCadence;
        results.clear();
        engine.snapshot_results(results);
        round.clear();
        round.reserve(results.size());
        for (const auto& r : results) round.push_back({r.key, r.value});
        st->ingest(ctx, t_ns, round);
        t_ns += 1'000'000'000ull;
      }
      if (now >= deadline) done = true;
    });
  }
  return static_cast<double>(packets) / (thread_cpu_seconds() - cpu0);
}

}  // namespace

int main() {
  bench::BenchReporter report("fig_store_overhead");
  const auto& trace = bench::backbone();
  const auto query = bench::compile("heavy_hitter.nqre", "hh");

  std::printf("Store overhead: heavy hitter, %zu-packet trace looped for "
              "%lld ms per run, 1 s sampling cadence\n\n",
              trace.size(),
              static_cast<long long>(kMeasureWall.count()));

  // Interleave OFF/ON pairs and keep each side's best run so a one-off
  // scheduling hiccup cannot fake an overhead regression.
  double best_off = 0, best_on = 0;
  for (int rep = 0; rep < 3; ++rep) {
    {
      core::Engine engine(query);
      best_off = std::max(best_off, replay_pps(engine, trace, nullptr, 0));
    }
    {
      core::Engine engine(query);
      // Budget sized to the workload: this measures the sampling cost, not
      // pathological eviction churn of an under-provisioned store.
      store::StoreConfig scfg;
      scfg.max_keys = static_cast<uint32_t>(
          std::max<size_t>(1024, trace.size()));
      store::SeriesStore st(scfg);
      const auto ctx = st.context("heavy_hitter.nqre:hh");
      best_on = std::max(best_on, replay_pps(engine, trace, &st, ctx));
    }
  }

  const double overhead_pct = 100.0 * (best_off / best_on - 1.0);
  std::printf("  %-12s %10.3f Mpps\n", "store off", best_off / 1e6);
  std::printf("  %-12s %10.3f Mpps\n", "store on", best_on / 1e6);
  std::printf("  overhead     %+9.2f%%\n", overhead_pct);

  // wall_ns encodes the measured rate as ns per replayed trace so the
  // JSON's throughput_mpps reproduces the Mpps printed above.
  report.record({"heavy_hitter/store_off", "backbone", trace.size(),
                 static_cast<uint64_t>(static_cast<double>(trace.size()) *
                                       1e9 / best_off),
                 0});
  report.record({"heavy_hitter/store_on", "backbone", trace.size(),
                 static_cast<uint64_t>(static_cast<double>(trace.size()) *
                                       1e9 / best_on),
                 0});
  return 0;
}
