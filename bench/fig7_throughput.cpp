// Fig. 7a (§7.2): single-core throughput (million packets per second) of
// compiled NetQRE programs vs. manually optimized C++ baselines vs. the
// OpenSketch-style pipeline, over the CAIDA-like backbone trace.
//
// Expected shape (paper): NetQRE within ~9% of the manual baseline on each
// application; NetQRE ~11x OpenSketch on heavy hitter and ~1.8x on super
// spreader.
#include <benchmark/benchmark.h>

#include "baselines/baselines.hpp"
#include "bench/common.hpp"
#include "core/window.hpp"
#include "sketch/sketch.hpp"

namespace {

using namespace netqre;
using bench::backbone;

template <typename Fn>
void replay(benchmark::State& state, const std::vector<net::Packet>& trace,
            Fn make_sink) {
  for (auto _ : state) {
    auto sink = make_sink();
    for (const auto& p : trace) sink(p);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
  state.counters["MPPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(trace.size()) / 1e6,
      benchmark::Counter::kIsRate);
}

void engine_bench(benchmark::State& state, const std::string& file,
                  const std::string& main,
                  const std::vector<net::Packet>& trace) {
  const auto query = bench::compile(file, main);
  replay(state, trace, [&] {
    return [engine = std::make_shared<core::Engine>(query)](
               const net::Packet& p) { engine->on_packet(p); };
  });
}

// ---------------------------------------------------------- heavy hitter

void BM_HeavyHitter_NetQRE(benchmark::State& state) {
  engine_bench(state, "heavy_hitter.nqre", "hh", backbone());
}
void BM_HeavyHitter_Baseline(benchmark::State& state) {
  replay(state, backbone(), [] {
    return [impl = std::make_shared<baselines::HeavyHitter>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}
void BM_HeavyHitter_OpenSketch(benchmark::State& state) {
  replay(state, backbone(), [] {
    return [impl = std::make_shared<sketch::OpenSketchHeavyHitter>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}

// --------------------------------------------------------- super spreader

void BM_SuperSpreader_NetQRE(benchmark::State& state) {
  engine_bench(state, "super_spreader.nqre", "ss", backbone());
}
void BM_SuperSpreader_Baseline(benchmark::State& state) {
  replay(state, backbone(), [] {
    return [impl = std::make_shared<baselines::SuperSpreader>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}
void BM_SuperSpreader_OpenSketch(benchmark::State& state) {
  replay(state, backbone(), [] {
    return [impl = std::make_shared<sketch::OpenSketchSuperSpreader>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}

// ---------------------------------------------------------------- entropy

void BM_Entropy_NetQRE(benchmark::State& state) {
  engine_bench(state, "entropy.nqre", "src_pkts", backbone());
}
void BM_Entropy_Baseline(benchmark::State& state) {
  replay(state, backbone(), [] {
    return [impl = std::make_shared<baselines::EntropyEstimator>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}

// -------------------------------------------------------------- SYN flood

void BM_SynFlood_NetQRE(benchmark::State& state) {
  // Deployed with recent(5) (§4.2); benchmarked with 1 s tumbling windows so
  // the handshake-keyed guarded states are bounded as in deployment.
  const auto query = bench::compile("syn_flood.nqre", "incomplete_total");
  replay(state, bench::synflood_trace(), [&] {
    return [win = std::make_shared<core::TumblingWindow>(query, 1.0)](
               const net::Packet& p) { win->on_packet(p); };
  });
}
void BM_SynFlood_Baseline(benchmark::State& state) {
  replay(state, bench::synflood_trace(), [] {
    return [impl = std::make_shared<baselines::SynFloodDetector>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}

// -------------------------------------------------------- completed flows

void BM_CompletedFlows_NetQRE(benchmark::State& state) {
  engine_bench(state, "completed_flows.nqre", "completed_flows", backbone());
}
void BM_CompletedFlows_Baseline(benchmark::State& state) {
  replay(state, backbone(), [] {
    return [impl = std::make_shared<baselines::CompletedFlows>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}

// -------------------------------------------------------------- slowloris

void BM_Slowloris_NetQRE(benchmark::State& state) {
  engine_bench(state, "slowloris.nqre", "avg_rate",
               bench::slowloris_workload());
}
void BM_Slowloris_Baseline(benchmark::State& state) {
  replay(state, bench::slowloris_workload(), [] {
    return [impl = std::make_shared<baselines::SlowlorisDetector>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}

}  // namespace

BENCHMARK(BM_HeavyHitter_NetQRE);
BENCHMARK(BM_HeavyHitter_Baseline);
BENCHMARK(BM_HeavyHitter_OpenSketch);
BENCHMARK(BM_SuperSpreader_NetQRE);
BENCHMARK(BM_SuperSpreader_Baseline);
BENCHMARK(BM_SuperSpreader_OpenSketch);
BENCHMARK(BM_Entropy_NetQRE);
BENCHMARK(BM_Entropy_Baseline);
BENCHMARK(BM_SynFlood_NetQRE);
BENCHMARK(BM_SynFlood_Baseline);
BENCHMARK(BM_CompletedFlows_NetQRE);
BENCHMARK(BM_CompletedFlows_Baseline);
BENCHMARK(BM_Slowloris_NetQRE);
BENCHMARK(BM_Slowloris_Baseline);

BENCHMARK_MAIN();
