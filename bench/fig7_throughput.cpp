// Fig. 7a (§7.2): single-core throughput (million packets per second) of
// compiled NetQRE programs vs. manually optimized C++ baselines vs. the
// OpenSketch-style pipeline, over the CAIDA-like backbone trace.
//
// Expected shape (paper): NetQRE within ~9% of the manual baseline on each
// application; NetQRE ~11x OpenSketch on heavy hitter and ~1.8x on super
// spreader.
#include <benchmark/benchmark.h>

#include <span>
#include <type_traits>

#include "baselines/baselines.hpp"
#include "bench/common.hpp"
#include "core/window.hpp"
#include "sketch/sketch.hpp"

namespace {

using namespace netqre;
using bench::backbone;

bench::BenchReporter& reporter() {
  static bench::BenchReporter r("fig7_throughput");
  return r;
}

const char* workload_name(const std::vector<net::Packet>& trace) {
  if (&trace == &backbone()) return "backbone";
  if (&trace == &bench::synflood_trace()) return "syn_flood";
  if (&trace == &bench::slowloris_workload()) return "slowloris";
  return "custom";
}

// Replays the trace through the sink once per benchmark iteration.  Sinks
// invocable with a packet span go through the batched ingestion path
// (bench::kReplayBatch packets per call); per-packet sinks take the scalar
// path, packet by packet.
template <typename Fn, typename PeakFn>
void replay(benchmark::State& state, const char* name,
            const std::vector<net::Packet>& trace, Fn make_sink,
            PeakFn peak_state_bytes) {
  uint64_t wall_ns = 0;
  for (auto _ : state) {
    auto sink = make_sink();
    wall_ns += bench::time_ns([&] {
      if constexpr (std::is_invocable_v<decltype(sink),
                                        std::span<const net::Packet>>) {
        bench::for_each_batch(trace, sink);
      } else {
        for (const auto& p : trace) sink(p);
      }
    });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
  state.counters["MPPS"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(trace.size()) / 1e6,
      benchmark::Counter::kIsRate);
  reporter().record({name, workload_name(trace),
                     static_cast<uint64_t>(state.iterations()) * trace.size(),
                     wall_ns, peak_state_bytes()});
}

template <typename Fn>
void replay(benchmark::State& state, const char* name,
            const std::vector<net::Packet>& trace, Fn make_sink) {
  replay(state, name, trace, make_sink, [] { return uint64_t{0}; });
}

void engine_bench(benchmark::State& state, const char* name,
                  const std::string& file, const std::string& main,
                  const std::vector<net::Packet>& trace) {
  const auto query = bench::compile(file, main);
  std::shared_ptr<core::Engine> last;
  replay(
      state, name, trace,
      [&] {
        last = std::make_shared<core::Engine>(query);
        return [engine = last](std::span<const net::Packet> batch) {
          engine->on_batch(batch);
        };
      },
      [&] { return last ? uint64_t{last->state_memory()} : uint64_t{0}; });
}

// ---------------------------------------------------------- heavy hitter

void BM_HeavyHitter_NetQRE(benchmark::State& state) {
  engine_bench(state, "heavy_hitter/netqre", "heavy_hitter.nqre", "hh",
               backbone());
}
void BM_HeavyHitter_Baseline(benchmark::State& state) {
  replay(state, "heavy_hitter/baseline", backbone(), [] {
    return [impl = std::make_shared<baselines::HeavyHitter>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}
void BM_HeavyHitter_OpenSketch(benchmark::State& state) {
  replay(state, "heavy_hitter/opensketch", backbone(), [] {
    return [impl = std::make_shared<sketch::OpenSketchHeavyHitter>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}

// --------------------------------------------------------- super spreader

void BM_SuperSpreader_NetQRE(benchmark::State& state) {
  engine_bench(state, "super_spreader/netqre", "super_spreader.nqre", "ss",
               backbone());
}
void BM_SuperSpreader_Baseline(benchmark::State& state) {
  replay(state, "super_spreader/baseline", backbone(), [] {
    return [impl = std::make_shared<baselines::SuperSpreader>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}
void BM_SuperSpreader_OpenSketch(benchmark::State& state) {
  replay(state, "super_spreader/opensketch", backbone(), [] {
    return [impl = std::make_shared<sketch::OpenSketchSuperSpreader>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}

// ---------------------------------------------------------------- entropy

void BM_Entropy_NetQRE(benchmark::State& state) {
  engine_bench(state, "entropy/netqre", "entropy.nqre", "src_pkts",
               backbone());
}
void BM_Entropy_Baseline(benchmark::State& state) {
  replay(state, "entropy/baseline", backbone(), [] {
    return [impl = std::make_shared<baselines::EntropyEstimator>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}

// -------------------------------------------------------------- SYN flood

void BM_SynFlood_NetQRE(benchmark::State& state) {
  // Deployed with recent(5) (§4.2); benchmarked with 1 s tumbling windows so
  // the handshake-keyed guarded states are bounded as in deployment.
  const auto query = bench::compile("syn_flood.nqre", "incomplete_total");
  std::shared_ptr<core::TumblingWindow> last;
  replay(
      state, "syn_flood/netqre", bench::synflood_trace(),
      [&] {
        last = std::make_shared<core::TumblingWindow>(query, 1.0);
        return [win = last](const net::Packet& p) { win->on_packet(p); };
      },
      [&] {
        return last ? uint64_t{last->engine().state_memory()} : uint64_t{0};
      });
}
void BM_SynFlood_Baseline(benchmark::State& state) {
  replay(state, "syn_flood/baseline", bench::synflood_trace(), [] {
    return [impl = std::make_shared<baselines::SynFloodDetector>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}

// -------------------------------------------------------- completed flows

void BM_CompletedFlows_NetQRE(benchmark::State& state) {
  engine_bench(state, "completed_flows/netqre", "completed_flows.nqre",
               "completed_flows", backbone());
}
void BM_CompletedFlows_Baseline(benchmark::State& state) {
  replay(state, "completed_flows/baseline", backbone(), [] {
    return [impl = std::make_shared<baselines::CompletedFlows>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}

// -------------------------------------------------------------- slowloris

void BM_Slowloris_NetQRE(benchmark::State& state) {
  engine_bench(state, "slowloris/netqre", "slowloris.nqre", "avg_rate",
               bench::slowloris_workload());
}
void BM_Slowloris_Baseline(benchmark::State& state) {
  replay(state, "slowloris/baseline", bench::slowloris_workload(), [] {
    return [impl = std::make_shared<baselines::SlowlorisDetector>()](
               const net::Packet& p) { impl->on_packet(p); };
  });
}

}  // namespace

BENCHMARK(BM_HeavyHitter_NetQRE);
BENCHMARK(BM_HeavyHitter_Baseline);
BENCHMARK(BM_HeavyHitter_OpenSketch);
BENCHMARK(BM_SuperSpreader_NetQRE);
BENCHMARK(BM_SuperSpreader_Baseline);
BENCHMARK(BM_SuperSpreader_OpenSketch);
BENCHMARK(BM_Entropy_NetQRE);
BENCHMARK(BM_Entropy_Baseline);
BENCHMARK(BM_SynFlood_NetQRE);
BENCHMARK(BM_SynFlood_Baseline);
BENCHMARK(BM_CompletedFlows_NetQRE);
BENCHMARK(BM_CompletedFlows_Baseline);
BENCHMARK(BM_Slowloris_NetQRE);
BENCHMARK(BM_Slowloris_Baseline);

BENCHMARK_MAIN();
