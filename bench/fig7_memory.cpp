// Fig. 7b (§7.2): memory footprint of NetQRE state vs. the manually
// optimized baselines vs. the OpenSketch pipelines, after processing the
// benchmark traces.
//
// Expected shape (paper): NetQRE within ~1.6x of the manual baselines;
// OpenSketch smaller than both on heavy hitter (sketches trade accuracy for
// memory), NetQRE only ~11% above OpenSketch on super spreader.
#include <cstdio>
#include <string>

#include "baselines/baselines.hpp"
#include "bench/common.hpp"
#include "core/window.hpp"
#include "sketch/sketch.hpp"

namespace {

using namespace netqre;

void row(const std::string& app, const std::string& impl, size_t bytes,
         const std::string& note = "") {
  std::printf("%-18s %-12s %12.1f KB   %s\n", app.c_str(), impl.c_str(),
              static_cast<double>(bytes) / 1024.0, note.c_str());
}

}  // namespace

int main() {
  // Wall time below covers the shared feed loop (all impls in a block);
  // the JSON rows exist mainly for the peak_state_bytes column.
  bench::BenchReporter report("fig7_memory");
  const auto& trace = bench::backbone();
  std::printf(
      "Fig 7b: state memory after processing %zu backbone packets\n\n",
      trace.size());

  {
    core::Engine eng(bench::compile("heavy_hitter.nqre", "hh"));
    baselines::HeavyHitter base;
    sketch::OpenSketchHeavyHitter sk;
    const uint64_t ns = bench::time_ns([&] {
      for (const auto& p : trace) {
        eng.on_packet(p);
        base.on_packet(p);
        sk.on_packet(p);
      }
    });
    report.record({"heavy_hitter/netqre", "backbone", trace.size(), ns,
                   eng.state_memory()});
    row("heavy hitter", "NetQRE", eng.state_memory());
    row("heavy hitter", "baseline", base.memory(),
        std::to_string(base.flows()) + " exact flows");
    row("heavy hitter", "OpenSketch", sk.memory(), "approximate");
  }
  {
    core::Engine eng(bench::compile("super_spreader.nqre", "ss"));
    baselines::SuperSpreader base;
    sketch::OpenSketchSuperSpreader sk;
    const uint64_t ns = bench::time_ns([&] {
      for (const auto& p : trace) {
        eng.on_packet(p);
        base.on_packet(p);
        sk.on_packet(p);
      }
    });
    report.record({"super_spreader/netqre", "backbone", trace.size(), ns,
                   eng.state_memory()});
    row("super spreader", "NetQRE", eng.state_memory());
    row("super spreader", "baseline", base.memory());
    row("super spreader", "OpenSketch", sk.memory(), "approximate");
  }
  {
    core::Engine eng(bench::compile("entropy.nqre", "src_pkts"));
    baselines::EntropyEstimator base;
    const uint64_t ns = bench::time_ns([&] {
      for (const auto& p : trace) {
        eng.on_packet(p);
        base.on_packet(p);
      }
    });
    report.record({"entropy/netqre", "backbone", trace.size(), ns,
                   eng.state_memory()});
    row("entropy", "NetQRE", eng.state_memory());
    row("entropy", "baseline", base.memory());
  }
  {
    core::TumblingWindow win(bench::compile("syn_flood.nqre",
                                            "incomplete_total"), 1.0);
    baselines::SynFloodDetector base;
    const uint64_t ns = bench::time_ns([&] {
      for (const auto& p : bench::synflood_trace()) {
        win.on_packet(p);
        base.on_packet(p);
      }
    });
    report.record({"syn_flood/netqre", "syn_flood",
                   bench::synflood_trace().size(), ns,
                   win.engine().state_memory()});
    row("syn flood", "NetQRE", win.engine().state_memory(), "per window");
    row("syn flood", "baseline", base.memory());
  }
  {
    core::Engine eng(bench::compile("completed_flows.nqre",
                                    "completed_flows"));
    baselines::CompletedFlows base;
    const uint64_t ns = bench::time_ns([&] {
      for (const auto& p : trace) {
        eng.on_packet(p);
        base.on_packet(p);
      }
    });
    report.record({"completed_flows/netqre", "backbone", trace.size(), ns,
                   eng.state_memory()});
    row("completed flows", "NetQRE", eng.state_memory());
    row("completed flows", "baseline", base.memory());
  }
  {
    core::Engine eng(bench::compile("slowloris.nqre", "avg_rate"));
    baselines::SlowlorisDetector base;
    const uint64_t ns = bench::time_ns([&] {
      for (const auto& p : bench::slowloris_workload()) {
        eng.on_packet(p);
        base.on_packet(p);
      }
    });
    report.record({"slowloris/netqre", "slowloris",
                   bench::slowloris_workload().size(), ns,
                   eng.state_memory()});
    row("slowloris", "NetQRE", eng.state_memory());
    row("slowloris", "baseline", base.memory());
  }
  return 0;
}
