// Table 1 (§7.1): lines of NetQRE code for each of the 17 example
// monitoring applications, with the paper's reported counts for comparison.
// Every application is compiled through the full pipeline to prove the
// counted source is real.
#include <cstdio>
#include <map>
#include <string>

#include "apps/queries.hpp"
#include "bench/common.hpp"

int main() {
  // wall_ns is the full compile-pipeline time per application.
  netqre::bench::BenchReporter report("table1_loc");
  // LoC reported in the paper's Table 1, keyed as in apps::table1().
  const std::map<std::string, int> kPaperLoc = {
      {"Heavy Hitter (S4.1)", 6},
      {"Super Spreader (S4.1)", 2},
      {"Entropy Estimation [40]", 6},
      {"Flow size dist. [18]", 8},
      {"Traffic change detection [35]", 10},
      {"Count traffic [40]", 2},
      {"Completed flows (S4.2)", 6},
      {"SYN flood detection (S4.2)", 9},
      {"Slowloris detection (S4.2)", 12},
      {"Lifetime of connection", 8},
      {"Newly opened connection recently", 11},
      {"# duplicated ACKs", 5},
      {"# VoIP call", 7},
      {"VoIP usage (S4.3)", 18},
      {"Key word counting in emails", 11},
      {"DNS tunnel detection [12]", 4},
      {"DNS amplification [20]", 4},
  };

  std::printf("Table 1: Example monitoring applications NetQRE supports\n");
  std::printf("%-36s %8s %10s %10s\n", "Application", "LoC", "paper-LoC",
              "compiles");
  int max_loc = 0;
  for (const auto& app : netqre::apps::table1()) {
    int loc = netqre::apps::count_loc(app.file);
    max_loc = std::max(max_loc, loc);
    bool ok = true;
    std::string error;
    const uint64_t ns = netqre::bench::time_ns([&] {
      try {
        auto prog = netqre::apps::compile_app(app.file, app.main);
        ok = prog.query.root != nullptr;
      } catch (const std::exception& e) {
        ok = false;
        error = e.what();
      }
    });
    report.record({app.file + ":" + app.main, "compile", 0, ns, 0});
    std::printf("%-36s %8d %10d %10s  %s\n", app.title.c_str(), loc,
                kPaperLoc.at(app.title), ok ? "yes" : "NO", error.c_str());
  }
  std::printf("\nmax LoC = %d (paper: all programs within 18 LoC)\n",
              max_loc);
  return max_loc <= 18 ? 0 : 1;
}
