// Health-engine overhead: the same heavy-hitter replay with store sampling
// on in both legs, and the health engine's rule evaluation off vs on
// (DESIGN.md §8 "Health & alerting").
//
// The engine evaluates right after every ingest round — exactly where
// netqre-monitor calls it — so this measures the full per-cadence cost:
// the tier-aware range query, the window fold, the state machine, and the
// built-in self-monitoring rules over a registry snapshot.  The metric is
// packet throughput per CPU second of the replay thread (the fig8
// busy-time convention); the acceptance bar is <1% (CI gates on the
// same-run off/on ratio).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "bench/common.hpp"
#include "obs/health.hpp"
#include "store/series_store.hpp"

namespace {

using namespace netqre;
using Clock = std::chrono::steady_clock;

constexpr auto kMeasureWall = std::chrono::milliseconds(2000);
constexpr auto kCadence = std::chrono::milliseconds(1000);

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         1e-9 * static_cast<double>(ts.tv_nsec);
}

// Replays the trace for kMeasureWall, sampling into the store on the
// wall-clock cadence; with `health`, evaluates every rule after each
// ingest round like the monitor's engine loop.  Returns packets per CPU
// second of this thread.
double replay_pps(core::Engine& engine, const std::vector<net::Packet>& trace,
                  store::SeriesStore& st, store::SeriesStore::ContextId ctx,
                  health::HealthEngine* health) {
  uint64_t packets = 0;
  uint64_t t_ns = 1'700'000'000ull * 1'000'000'000ull;
  std::vector<core::ResultSample> results;
  std::vector<store::Sample> round;
  const auto t0 = Clock::now();
  const double cpu0 = thread_cpu_seconds();
  const auto deadline = t0 + kMeasureWall;
  auto next_sample = t0 + kCadence;
  bool done = false;
  while (!done) {
    bench::for_each_batch(trace, [&](std::span<const net::Packet> batch) {
      if (done) return;
      engine.on_batch(batch);
      packets += batch.size();
      const auto now = Clock::now();
      if (now >= next_sample) {
        next_sample = now + kCadence;
        results.clear();
        engine.snapshot_results(results);
        round.clear();
        round.reserve(results.size());
        for (const auto& r : results) round.push_back({r.key, r.value});
        st.ingest(ctx, t_ns, round);
        if (health) health->evaluate(t_ns);
        t_ns += 1'000'000'000ull;
      }
      if (now >= deadline) done = true;
    });
  }
  return static_cast<double>(packets) / (thread_cpu_seconds() - cpu0);
}

store::StoreConfig store_config(size_t trace_size) {
  store::StoreConfig scfg;
  scfg.max_keys =
      static_cast<uint32_t>(std::max<size_t>(1024, trace_size));
  return scfg;
}

}  // namespace

int main() {
  bench::BenchReporter report("fig_health_overhead");
  const auto& trace = bench::backbone();
  const auto query = bench::compile("heavy_hitter.nqre", "hh");

  std::printf("Health overhead: heavy hitter, %zu-packet trace looped for "
              "%lld ms per run, 1 s sampling cadence, store on in both "
              "legs\n\n",
              trace.size(),
              static_cast<long long>(kMeasureWall.count()));

  // The monitor's rule load: the built-in self-monitoring alarms plus one
  // aggregate alarm over the replayed query's context.
  health::HealthRule agg;
  agg.name = "bench_hh_total";
  agg.source = health::HealthRule::Source::Store;
  agg.selector = "heavy_hitter.nqre:hh";
  agg.method = health::HealthRule::Method::Max;
  agg.window_s = 60;
  agg.crit = {health::Threshold::Op::Gt, 1e18};  // never fires: cost only
  agg.info = "bench aggregate rule";

  // Interleave OFF/ON pairs and keep each side's best run so a one-off
  // scheduling hiccup cannot fake an overhead regression.
  double best_off = 0, best_on = 0;
  for (int rep = 0; rep < 3; ++rep) {
    {
      core::Engine engine(query);
      store::SeriesStore st(store_config(trace.size()));
      const auto ctx = st.context("heavy_hitter.nqre:hh");
      best_off =
          std::max(best_off, replay_pps(engine, trace, st, ctx, nullptr));
    }
    {
      core::Engine engine(query);
      store::SeriesStore st(store_config(trace.size()));
      const auto ctx = st.context("heavy_hitter.nqre:hh");
      health::HealthEngine healthd(&st, nullptr);
      healthd.add_rules(health::builtin_rules());
      healthd.add_rule(agg);
      best_on =
          std::max(best_on, replay_pps(engine, trace, st, ctx, &healthd));
    }
  }

  const double overhead_pct = 100.0 * (best_off / best_on - 1.0);
  std::printf("  %-12s %10.3f Mpps\n", "health off", best_off / 1e6);
  std::printf("  %-12s %10.3f Mpps\n", "health on", best_on / 1e6);
  std::printf("  overhead     %+9.2f%%\n", overhead_pct);

  report.record({"heavy_hitter/health_off", "backbone", trace.size(),
                 static_cast<uint64_t>(static_cast<double>(trace.size()) *
                                       1e9 / best_off),
                 0});
  report.record({"heavy_hitter/health_on", "backbone", trace.size(),
                 static_cast<uint64_t>(static_cast<double>(trace.size()) *
                                       1e9 / best_on),
                 0});
  return 0;
}
