// Fig. 7a, compiled mode (§6): the NetQRE compiler's C++ back-end.
//
// The paper's headline throughput claim — compiled NetQRE within ~9% of
// manually optimized code — is about *generated* C++, not an interpreting
// runtime.  This benchmark drives the full pipeline: each supported query is
// specialized to C++ source, compiled with g++ -O2, and the resulting
// binary replays the backbone trace from a pcap file.  Its throughput is
// compared against the hand-written baseline running on the same capture.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "baselines/baselines.hpp"
#include "bench/common.hpp"
#include "core/codegen.hpp"
#include "net/pcap.hpp"

namespace {

using namespace netqre;

struct RunResult {
  long long aggregate = 0;
  size_t packets = 0;
  double seconds = 0;
  bool ok = false;
};

RunResult run_generated(const std::string& file, const std::string& main_fn,
                        const std::string& pcap, const std::string& tmpdir) {
  RunResult r;
  auto query = bench::compile(file, main_fn);
  auto gen = core::generate_cpp(query, "Monitor");
  if (!gen) return r;

  const std::string src = tmpdir + "/" + main_fn + "_gen.cpp";
  const std::string bin = tmpdir + "/" + main_fn + "_gen";
  std::ofstream(src) << core::generate_pcap_main(*gen);
  const std::string compile =
      "g++ -O2 -std=c++20 " + src + " -o " + bin + " 2>" + tmpdir + "/cc.log";
  if (std::system(compile.c_str()) != 0) return r;

  const std::string out_path = tmpdir + "/" + main_fn + ".out";
  if (std::system((bin + " " + pcap + " > " + out_path).c_str()) != 0) {
    return r;
  }
  std::ifstream in(out_path);
  in >> r.aggregate >> r.packets >> r.seconds;
  r.ok = static_cast<bool>(in);
  return r;
}

}  // namespace

int main() {
  bench::BenchReporter report("fig7_codegen");
  const char* tmp = std::getenv("TMPDIR");
  const std::string tmpdir = tmp ? tmp : "/tmp";
  const std::string pcap = tmpdir + "/netqre_codegen_backbone.pcap";
  const auto& trace = bench::backbone();
  net::write_all(pcap, trace);

  std::printf("Fig 7a (compiled mode): generated C++ vs manual baseline, "
              "%zu packets\n\n",
              trace.size());
  std::printf("%-22s %10s %10s %10s %12s\n", "application", "gen-MPPS",
              "base-MPPS", "overhead", "agree");

  struct App {
    const char* title;
    const char* file;
    const char* main_fn;
  };
  const App apps[] = {
      {"heavy hitter", "heavy_hitter.nqre", "hh"},
      {"super spreader", "super_spreader.nqre", "ss"},
      {"entropy (src pkts)", "entropy.nqre", "src_pkts"},
      {"flow size dist", "flow_size_dist.nqre", "flow_bytes"},
      {"traffic change", "traffic_change.nqre", "src_bytes"},
  };

  for (const auto& app : apps) {
    RunResult gen = run_generated(app.file, app.main_fn, pcap, tmpdir);
    if (!gen.ok) {
      std::printf("%-22s  (query shape not supported by the specializer)\n",
                  app.title);
      continue;
    }
    // Baseline on the identical capture (heavy hitter structure: per-key
    // byte/packet counts — representative of all four shapes).
    net::PacketBatch loaded;
    net::read_all(pcap, loaded);
    const auto packets = std::move(loaded).take();
    baselines::HeavyHitter base;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& p : packets) base.on_packet(p);
    const double base_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const double gen_mpps = gen.packets / gen.seconds / 1e6;
    const double base_mpps = packets.size() / base_s / 1e6;
    std::printf("%-22s %10.2f %10.2f %9.1f%% %12lld\n", app.title, gen_mpps,
                base_mpps, (base_mpps / gen_mpps - 1.0) * 100.0,
                gen.aggregate);
    report.record({std::string(app.main_fn) + "/generated", "backbone_pcap",
                   gen.packets, static_cast<uint64_t>(gen.seconds * 1e9), 0});
    report.record({std::string(app.main_fn) + "/baseline", "backbone_pcap",
                   packets.size(), static_cast<uint64_t>(base_s * 1e9), 0});
  }
  std::printf("\n(paper: compiled NetQRE within 9%% of manual baselines; "
              "'agree' shows the query aggregate)\n");
  std::remove(pcap.c_str());
  return 0;
}
