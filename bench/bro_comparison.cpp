// §7.2 Bro comparison: counting VoIP calls on a SIP trace with 4338 calls.
//
// The paper reports NetQRE finishing within 1 second while Bro takes ~23 s,
// attributing the gap to Bro's event-driven core plus script *interpreter*.
// Here the same task runs on (a) the compiled NetQRE query and (b) the
// Bro-like event engine + bytecode interpreter (src/brolike).  Both must
// report the same call count.
#include <chrono>
#include <cstdio>

#include "apps/queries.hpp"
#include "bench/common.hpp"
#include "brolike/brolike.hpp"
#include "core/engine.hpp"
#include "trafficgen/trafficgen.hpp"

int main() {
  using namespace netqre;
  using Clock = std::chrono::steady_clock;
  bench::BenchReporter report("bro_comparison");

  trafficgen::SipConfig cfg;
  cfg.n_users = 50;
  cfg.n_calls = 4338;  // the paper's trace size
  cfg.media_pkts_per_call = 20;
  const auto trace = trafficgen::sip_trace(cfg);
  std::printf("SIP trace: %zu packets, %u calls, %u users\n\n", trace.size(),
              cfg.n_calls, cfg.n_users);

  // --- NetQRE ------------------------------------------------------------
  auto prog = apps::compile_app("voip_count.nqre", "voip_call_count");
  core::Engine engine(prog.query);
  auto t0 = Clock::now();
  for (const auto& p : trace) engine.on_packet(p);
  const int64_t netqre_calls = engine.eval().as_int();
  const double netqre_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  // --- Bro-like ------------------------------------------------------------
  brolike::VoipCallCounter bro;
  t0 = Clock::now();
  for (const auto& p : trace) bro.on_packet(p);
  const int64_t bro_calls = bro.total_calls();
  const double bro_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::printf("%-12s %10s %12s\n", "engine", "calls", "seconds");
  std::printf("%-12s %10lld %12.3f\n", "NetQRE",
              static_cast<long long>(netqre_calls), netqre_s);
  std::printf("%-12s %10lld %12.3f\n", "Bro-like",
              static_cast<long long>(bro_calls), bro_s);
  std::printf("\nspeedup: %.1fx (paper: ~23x; both engines must agree on "
              "the count)\n",
              bro_s / netqre_s);
  report.record({"voip_count/netqre", "sip", trace.size(),
                 static_cast<uint64_t>(netqre_s * 1e9),
                 engine.state_memory()});
  report.record({"voip_count/brolike", "sip", trace.size(),
                 static_cast<uint64_t>(bro_s * 1e9), 0});
  if (netqre_calls != bro_calls || netqre_calls != cfg.n_calls) {
    std::printf("MISMATCH: expected %u calls\n", cfg.n_calls);
    return 1;
  }
  return 0;
}
