// Shared workload setup for the benchmark binaries.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/queries.hpp"
#include "core/engine.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre::bench {

// Number of backbone packets to replay; override with NETQRE_BENCH_PACKETS.
// The paper replays a 37M-packet CAIDA minute; the default here keeps a full
// benchmark run in CI-scale time while preserving all relative shapes.
inline uint64_t bench_packets() {
  if (const char* env = std::getenv("NETQRE_BENCH_PACKETS")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 400'000;
}

// The CAIDA-like backbone trace (DESIGN.md §3), built once per process.
inline const std::vector<net::Packet>& backbone() {
  static const std::vector<net::Packet> trace = [] {
    trafficgen::BackboneConfig cfg;
    cfg.n_packets = bench_packets();
    cfg.n_flows = static_cast<uint32_t>(
        std::max<uint64_t>(1000, bench_packets() / 20));
    return trafficgen::backbone_trace(cfg);
  }();
  return trace;
}

// Attack trace for the SYN-flood application: the query keys its guarded
// states on handshake sequence numbers, so it runs on handshake traffic
// (windowed in deployment, §4.2).
inline const std::vector<net::Packet>& synflood_trace() {
  static const std::vector<net::Packet> trace = [] {
    trafficgen::SynFloodConfig cfg;
    cfg.benign_handshakes = 2000;
    cfg.attack_handshakes = 6000;
    return trafficgen::syn_flood_trace(cfg);
  }();
  return trace;
}

inline const std::vector<net::Packet>& slowloris_workload() {
  static const std::vector<net::Packet> trace = [] {
    trafficgen::SlowlorisConfig cfg;
    cfg.normal_conns = 300;
    cfg.slow_conns = 450;
    return trafficgen::slowloris_trace(cfg);
  }();
  return trace;
}

inline core::CompiledQuery compile(const std::string& file,
                                   const std::string& main) {
  return apps::compile_app(file, main).query;
}

}  // namespace netqre::bench
