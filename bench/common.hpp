// Shared workload setup and JSON result reporting for the benchmark
// binaries.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "apps/queries.hpp"
#include "core/engine.hpp"
#include "core/parallel.hpp"
#include "net/packet_view.hpp"
#include "obs/json.hpp"
#include "trafficgen/trafficgen.hpp"

namespace netqre::bench {

// Number of backbone packets to replay; override with NETQRE_BENCH_PACKETS.
// The paper replays a 37M-packet CAIDA minute; the default here keeps a full
// benchmark run in CI-scale time while preserving all relative shapes.
inline uint64_t bench_packets() {
  if (const char* env = std::getenv("NETQRE_BENCH_PACKETS")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 400'000;
}

// The CAIDA-like backbone trace (DESIGN.md §3), built once per process.
inline const std::vector<net::Packet>& backbone() {
  static const std::vector<net::Packet> trace = [] {
    trafficgen::BackboneConfig cfg;
    cfg.n_packets = bench_packets();
    cfg.n_flows = static_cast<uint32_t>(
        std::max<uint64_t>(1000, bench_packets() / 20));
    return trafficgen::backbone_trace(cfg);
  }();
  return trace;
}

// Attack trace for the SYN-flood application: the query keys its guarded
// states on handshake sequence numbers, so it runs on handshake traffic
// (windowed in deployment, §4.2).
inline const std::vector<net::Packet>& synflood_trace() {
  static const std::vector<net::Packet> trace = [] {
    trafficgen::SynFloodConfig cfg;
    cfg.benign_handshakes = 2000;
    cfg.attack_handshakes = 6000;
    return trafficgen::syn_flood_trace(cfg);
  }();
  return trace;
}

inline const std::vector<net::Packet>& slowloris_workload() {
  static const std::vector<net::Packet> trace = [] {
    trafficgen::SlowlorisConfig cfg;
    cfg.normal_conns = 300;
    cfg.slow_conns = 450;
    return trafficgen::slowloris_trace(cfg);
  }();
  return trace;
}

inline core::CompiledQuery compile(const std::string& file,
                                   const std::string& main) {
  return apps::compile_app(file, main).query;
}

// Batch size used when replaying an in-memory trace through the batched
// ingestion path (Engine::on_batch / ParallelEngine::feed).
inline constexpr size_t kReplayBatch = 1024;

// Invokes `sink` with consecutive kReplayBatch-sized spans of `trace`.
template <typename Fn>
void for_each_batch(const std::vector<net::Packet>& trace, Fn&& sink) {
  for (size_t i = 0; i < trace.size(); i += kReplayBatch) {
    const size_t n = std::min(kReplayBatch, trace.size() - i);
    sink(std::span<const net::Packet>(trace.data() + i, n));
  }
}

// Replays `trace` through the dispatcher's move-based batch path: chunks
// are copied into one reusable PacketBatch (standing in for a capture
// source's decode fill), then MOVED into the shard queues by
// feed(PacketBatch&&), so the dispatch cost measured is the zero-copy one.
inline void feed_batched(core::ParallelEngine& par,
                         const std::vector<net::Packet>& trace) {
  net::PacketBatch batch(kReplayBatch);
  for (size_t i = 0; i < trace.size(); i += kReplayBatch) {
    batch.clear();
    const size_t n = std::min(kReplayBatch, trace.size() - i);
    for (size_t j = 0; j < n; ++j) batch.next_slot() = trace[i + j];
    par.feed(std::move(batch));
  }
}

// Wall-clock for one benchmark measurement, in nanoseconds.
template <typename Fn>
uint64_t time_ns(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

// One measured case inside a benchmark binary.
struct BenchRow {
  std::string name;               // e.g. "heavy_hitter/netqre"
  std::string workload;           // backbone / syn_flood / slowloris / sip
  uint64_t packets = 0;           // packets replayed in `wall_ns`
  uint64_t wall_ns = 0;
  uint64_t peak_state_bytes = 0;  // 0 when the case tracks no state
};

// Collects BenchRows and writes `<results-dir>/bench_<name>.json` when the
// binary exits, alongside the human-readable stdout tables.  The results
// directory defaults to ./results and can be moved with NETQRE_RESULTS_DIR.
// Write failures (read-only working dir) are reported but never change the
// benchmark's exit status.
class BenchReporter {
 public:
  explicit BenchReporter(std::string bench) : bench_(std::move(bench)) {}
  ~BenchReporter() { write(); }

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  // Last write wins per case name: benchmark frameworks re-run a case while
  // calibrating iteration counts, and only the final (longest) run matters.
  void record(BenchRow row) {
    for (auto& r : rows_) {
      if (r.name == row.name) {
        r = std::move(row);
        return;
      }
    }
    rows_.push_back(std::move(row));
  }

  static std::string results_dir() {
    if (const char* env = std::getenv("NETQRE_RESULTS_DIR")) return env;
    return "results";
  }

  void write() const {
    if (rows_.empty()) return;
    obs::JsonWriter w;
    w.begin_object();
    w.key("bench").value(bench_);
    w.key("rows").begin_array();
    for (const auto& r : rows_) {
      w.begin_object();
      w.key("name").value(r.name);
      w.key("workload").value(r.workload);
      w.key("packets").value(r.packets);
      w.key("wall_ns").value(r.wall_ns);
      const double mpps =
          r.wall_ns > 0
              ? static_cast<double>(r.packets) * 1e3 /
                    static_cast<double>(r.wall_ns)
              : 0.0;
      w.key("throughput_mpps").value(mpps);
      w.key("peak_state_bytes").value(r.peak_state_bytes);
      w.end_object();
    }
    w.end_array();
    w.end_object();

    std::error_code ec;
    const std::filesystem::path dir(results_dir());
    std::filesystem::create_directories(dir, ec);
    const std::filesystem::path path = dir / ("bench_" + bench_ + ".json");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.string().c_str());
      return;
    }
    out << w.str() << '\n';
  }

 private:
  std::string bench_;
  std::vector<BenchRow> rows_;
};

}  // namespace netqre::bench
