// Fig. 8 (§7.2): parallelization speedup with 1-8 worker threads for the
// super spreader, SYN flood and Slowloris applications.
//
// The paper reports >=3.9x speedup at 8 threads (>=2.6x including the
// software load balancer).  This container exposes a single core, so the
// wall-clock cannot show parallel speedup; following DESIGN.md §3, the
// figure is reproduced over *attributable busy time*: work is genuinely
// hash-partitioned across N engine instances, and speedup is computed as
// total busy time divided by the maximum per-shard busy time (the critical
// path on a machine with >= N cores).  Load-balancer (dispatch) time is
// measured separately.
#include <chrono>
#include <cstdio>

#include "bench/common.hpp"
#include "core/parallel.hpp"
#include "net/flow.hpp"

namespace {

using namespace netqre;
using Clock = std::chrono::steady_clock;

void run_app(bench::BenchReporter& report, const char* name,
             const char* workload, const core::CompiledQuery& query,
             const std::vector<net::Packet>& trace) {
  std::printf("%s\n", name);
  std::printf("  %7s %12s %12s %14s %14s\n", "threads", "busy-total",
              "busy-max", "speedup", "w/ balancer");
  double base_busy = 0;
  for (int threads : {1, 2, 4, 8}) {
    core::ParallelEngine par(query, threads, [](const net::Packet& p) {
      return static_cast<size_t>(net::mix64(p.src_ip));
    });
    const auto t0 = Clock::now();
    bench::feed_batched(par, trace);
    const double dispatch_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    par.finish();

    const double total = par.total_busy_seconds();
    const double critical = par.max_busy_seconds();
    if (threads == 1) base_busy = total;
    // Speedup on an N-core machine = single-thread work / critical path.
    const double speedup = base_busy / critical;
    // Including the load balancer: dispatch runs serially ahead of the
    // slowest shard.
    const double with_lb = base_busy / (critical + dispatch_s);
    std::printf("  %7d %11.3fs %11.3fs %13.2fx %13.2fx\n", threads, total,
                critical, speedup, with_lb);
    // wall_ns here is the critical path (busy-max): the wall time an
    // N-core machine would need for the sharded work.
    report.record({std::string(name) + "/threads=" + std::to_string(threads),
                   workload, trace.size(),
                   static_cast<uint64_t>(critical * 1e9),
                   par.state_memory()});
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::BenchReporter report("fig8_parallel");
  const auto& trace = bench::backbone();
  std::printf("Fig 8: parallel speedup over %zu packets "
              "(busy-time attribution; single-core container)\n\n",
              trace.size());

  run_app(report, "super_spreader", "backbone",
          bench::compile("super_spreader.nqre", "ss"), trace);
  run_app(report, "syn_flood", "syn_flood",
          bench::compile("syn_flood.nqre", "incomplete_total"),
          bench::synflood_trace());
  run_app(report, "slowloris", "slowloris",
          bench::compile("slowloris.nqre", "avg_rate"),
          bench::slowloris_workload());
  return 0;
}
