// fig_multiquery: multi-tenant QuerySet scaling — the cost of running N
// queries over one capture, shared-pass versus sequential replays.
//
// The deployment question (DESIGN.md §7): an operator runs tens of Table-1
// queries on the same tap.  The naive shape replays the capture once per
// query (N decodes, N passes); the QuerySet shape decodes and classifies
// each batch once and dispatches every loaded query from the shared pass.
//
// Cases (JSON in results/bench_fig_multiquery.json):
//   seq/1, seq/10      one full run_pcap replay per engine, summed
//   qs/1, qs/10, qs/100  one QuerySet pass over the same capture
//   qs/17-mixed        all Table-1 queries in one set, mixed tiers
//
// `packets` is the number of packet visits performed in `wall_ns` (so
// seq/10 counts 10x the capture); the trace-level speedup printed at the
// bottom compares wall clock for evaluating the same query set.
#include <cassert>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "netqre.hpp"

namespace {

using namespace netqre;

// Writes `trace` as a full-length capture: backbone_trace synthesizes the
// paper's 888 B mean wire length but carries no payload bytes, so writing
// it verbatim would produce a snaplen-42 capture whose per-packet decode is
// just a header parse.  A deployment tap stores the whole frame, and every
// sequential replay re-reads and re-copies those bytes — exactly the
// per-packet ingest the shared pass amortizes — so the capture here carries
// its claimed length (incl_len == orig_len).
void write_full_frames(const std::string& path,
                       std::span<const net::Packet> trace) {
  net::PcapWriter writer(path);
  net::Packet frame;
  for (const net::Packet& p : trace) {
    frame = p;
    const uint32_t headers = frame.proto == net::Proto::Udp ? 42u : 54u;
    if (frame.wire_len > headers) {
      frame.payload.assign(frame.wire_len - headers, 'x');
    }
    writer.write_packet(frame);
  }
  writer.flush();
}

struct NamedQuery {
  std::string name;
  core::CompiledQuery query;
};

// The Table-1 census, partitioned by the tier each query actually gets
// under the default certificate gate (ROADMAP: 8 of 17 specialize).
std::vector<NamedQuery> compiled_census() {
  std::vector<NamedQuery> out;
  for (const auto& info : apps::table1()) {
    auto query = bench::compile(info.file, info.main);
    core::QuerySet probe;
    probe.load(info.main, query);
    if (probe.status(info.main)->tier == "specialized") {
      out.push_back({info.main, std::move(query)});
    }
  }
  return out;
}

// N queries drawn from `census`, aliasing with distinct names once the
// census is exhausted (alias k of query q is "q#k").
std::vector<NamedQuery> first_n(const std::vector<NamedQuery>& census,
                                size_t n) {
  std::vector<NamedQuery> out;
  for (size_t i = 0; i < n; ++i) {
    const auto& base = census[i % census.size()];
    std::string name = base.name;
    if (i >= census.size()) {
      name += "#" + std::to_string(i / census.size() + 1);
    }
    out.push_back({std::move(name), base.query});
  }
  return out;
}

uint64_t run_queryset(const std::vector<NamedQuery>& queries,
                      const std::string& pcap, uint64_t* packets,
                      uint64_t* state_bytes) {
  QuerySet set;
  for (const auto& q : queries) set.load(q.name, q.query);
  uint64_t n = 0;
  const uint64_t wall = bench::time_ns([&] { n = run_pcap(set, pcap); });
  *packets = n;
  *state_bytes = 0;
  for (const auto& st : set.status()) *state_bytes += st.state_bytes;
  return wall;
}

uint64_t run_sequential(const std::vector<NamedQuery>& queries,
                        const std::string& pcap, uint64_t* packets) {
  *packets = 0;
  return bench::time_ns([&] {
    for (const auto& q : queries) {
      Engine engine(q.query);
      *packets += run_pcap(engine, pcap);
    }
  });
}

}  // namespace

int main() {
  bench::BenchReporter reporter("fig_multiquery");

  // The shared capture: the backbone trace written to a real full-frame
  // pcap, so every case pays (or shares) the same mmap + decode cost a
  // deployment would.
  const auto& trace = bench::backbone();
  const auto pcap_path =
      (std::filesystem::temp_directory_path() / "netqre_multiquery.pcap")
          .string();
  write_full_frames(pcap_path, trace);

  const auto census = compiled_census();
  std::printf("compiled census: %zu of %zu Table-1 queries specialize\n\n",
              census.size(), apps::table1().size());
  assert(!census.empty());

  std::printf("%-12s %10s %12s %10s %14s\n", "case", "queries", "packets",
              "mpps", "query-evals/s");

  struct Case {
    std::string name;
    size_t n_queries;
    uint64_t wall_ns;
  };
  std::vector<Case> cases;

  auto report = [&](const std::string& name, size_t n_queries,
                    uint64_t packets, uint64_t wall, uint64_t state_bytes) {
    const double mpps = static_cast<double>(packets) * 1e3 /
                        static_cast<double>(wall);
    // Query evaluations per second: each replayed packet visits every
    // loaded query once (for seq cases, `packets` already counts the
    // repeated replays, so the multiplier is 1).
    const double evals =
        name.rfind("qs/", 0) == 0
            ? mpps * 1e6 * static_cast<double>(n_queries)
            : mpps * 1e6;
    std::printf("%-12s %10zu %12llu %10.2f %14.3g\n", name.c_str(),
                n_queries, static_cast<unsigned long long>(packets), mpps,
                evals);
    std::fflush(stdout);
    reporter.record({name, "backbone", packets, wall, state_bytes});
    cases.push_back({name, n_queries, wall});
  };

  for (const size_t n : {size_t{1}, size_t{10}}) {
    const auto queries = first_n(census, n);
    uint64_t packets = 0;
    const uint64_t wall = run_sequential(queries, pcap_path, &packets);
    report("seq/" + std::to_string(n), n, packets, wall, 0);
  }

  for (const size_t n : {size_t{1}, size_t{10}, size_t{100}}) {
    const auto queries = first_n(census, n);
    uint64_t packets = 0, state_bytes = 0;
    const uint64_t wall =
        run_queryset(queries, pcap_path, &packets, &state_bytes);
    report("qs/" + std::to_string(n), n, packets, wall, state_bytes);
  }

  // The honest mixed row: every Table-1 query in one set, whatever tier the
  // certificate gate assigns.  The interpreted queries dominate the pass —
  // voip_usage's nested-scope evaluation is superquadratic in packets on
  // flow-heavy traces (~30s for 4k packets alone) — so this row runs on a
  // short slice of the capture (its own `packets` count is in the JSON;
  // mpps stays comparable).
  {
    const size_t mixed_n = std::min<size_t>(trace.size(), 2'000);
    std::printf("(qs/17-mixed runs %zu of %zu packets)\n", mixed_n,
                trace.size());
    const auto mixed_pcap =
        (std::filesystem::temp_directory_path() / "netqre_multiquery17.pcap")
            .string();
    write_full_frames(mixed_pcap, std::span<const net::Packet>(trace.data(),
                                                               mixed_n));
    std::vector<NamedQuery> all;
    for (const auto& info : apps::table1()) {
      all.push_back({info.main, bench::compile(info.file, info.main)});
    }
    uint64_t packets = 0, state_bytes = 0;
    const uint64_t wall =
        run_queryset(all, mixed_pcap, &packets, &state_bytes);
    report("qs/17-mixed", all.size(), packets, wall, state_bytes);
    std::error_code ec;
    std::filesystem::remove(mixed_pcap, ec);
  }

  // Trace-level speedup: wall clock to evaluate the same 10 queries over
  // the same capture, shared pass vs sequential replays.
  auto wall_of = [&](const std::string& name) {
    for (const auto& c : cases) {
      if (c.name == name) return c.wall_ns;
    }
    return uint64_t{0};
  };
  const double speedup = static_cast<double>(wall_of("seq/10")) /
                         static_cast<double>(wall_of("qs/10"));
  // Cores needed per query at a 1 Mpps tap, from the 10-query shared pass.
  const double qs10_mpps = static_cast<double>(trace.size()) * 1e3 /
                           static_cast<double>(wall_of("qs/10"));
  std::printf("\nqs/10 vs seq/10 speedup: %.2fx (acceptance: >= 3x)\n",
              speedup);
  std::printf("queries per core at 1 Mpps: %.1f\n", qs10_mpps * 10.0);

  std::error_code ec;
  std::filesystem::remove(pcap_path, ec);
  return speedup >= 3.0 ? 0 : 1;
}
