// Fig. 9 (§7.3): end-to-end enforcement experiments on the emulated SDN
// substrate.  Prints, for each experiment, the detection/blocking times and
// the per-host server bandwidth series the paper plots.
//
// Expected shapes: (a) the SYN flood starting at t=7 s is blocked within a
// fraction of a second of crossing the detection threshold, restoring C1's
// bandwidth; (b) the NetQRE tap blocks the heavy hitter sooner than the
// forward/stats alternatives and sends orders of magnitude less traffic to
// the controller; (c) the 5 Mbps VoIP call is cut once usage passes
// 18.75 MB (~30 s).
#include <cstdio>
#include <cstring>

#include "bench/common.hpp"
#include "sdn/experiments.hpp"

int main(int argc, char** argv) {
  using namespace netqre::sdn;
  const char* only = argc > 1 ? argv[1] : "";
  // wall_ns is the emulation wall time of each experiment (packets are the
  // emulator's, not a replayed trace, so the packet column stays 0).
  netqre::bench::BenchReporter report("fig9_e2e");

  if (!*only || std::strstr(only, "synflood")) {
    std::printf("=== Fig 9a: SYN flood detection and blocking ===\n");
    const uint64_t ns = netqre::bench::time_ns([&] {
      std::printf("%s\n", format_series(run_synflood_experiment()).c_str());
    });
    report.record({"fig9a_synflood", "sdn_emulation", 0, ns, 0});
  }
  if (!*only || std::strstr(only, "heavyhitter")) {
    std::printf("=== Fig 9b: heavy hitter mitigation "
                "(netqre vs forward vs stats) ===\n");
    const uint64_t ns = netqre::bench::time_ns([&] {
      for (const auto& r : run_heavyhitter_experiment()) {
        std::printf("%s\n", format_series(r).c_str());
      }
    });
    report.record({"fig9b_heavyhitter", "sdn_emulation", 0, ns, 0});
  }
  if (!*only || std::strstr(only, "voip")) {
    std::printf("=== Fig 9c: VoIP usage policy enforcement ===\n");
    const uint64_t ns = netqre::bench::time_ns([&] {
      std::printf("%s\n", format_series(run_voip_experiment()).c_str());
    });
    report.record({"fig9c_voip", "sdn_emulation", 0, ns, 0});
  }
  return 0;
}
