// Fig. 9 (§7.3): end-to-end enforcement experiments on the emulated SDN
// substrate.  Prints, for each experiment, the detection/blocking times and
// the per-host server bandwidth series the paper plots.
//
// Expected shapes: (a) the SYN flood starting at t=7 s is blocked within a
// fraction of a second of crossing the detection threshold, restoring C1's
// bandwidth; (b) the NetQRE tap blocks the heavy hitter sooner than the
// forward/stats alternatives and sends orders of magnitude less traffic to
// the controller; (c) the 5 Mbps VoIP call is cut once usage passes
// 18.75 MB (~30 s).
#include <cstdio>
#include <cstring>

#include "sdn/experiments.hpp"

int main(int argc, char** argv) {
  using namespace netqre::sdn;
  const char* only = argc > 1 ? argv[1] : "";

  if (!*only || std::strstr(only, "synflood")) {
    std::printf("=== Fig 9a: SYN flood detection and blocking ===\n");
    std::printf("%s\n", format_series(run_synflood_experiment()).c_str());
  }
  if (!*only || std::strstr(only, "heavyhitter")) {
    std::printf("=== Fig 9b: heavy hitter mitigation "
                "(netqre vs forward vs stats) ===\n");
    for (const auto& r : run_heavyhitter_experiment()) {
      std::printf("%s\n", format_series(r).c_str());
    }
  }
  if (!*only || std::strstr(only, "voip")) {
    std::printf("=== Fig 9c: VoIP usage policy enforcement ===\n");
    std::printf("%s\n", format_series(run_voip_experiment()).c_str());
  }
  return 0;
}
